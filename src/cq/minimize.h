// CQ minimization (paper, Section 4.2): every CQ has a unique (up to
// variable renaming) equivalent minimal query, whose tableau is
// core(T_Q, x̄). Free variables are frozen during core computation.

#ifndef CQA_CQ_MINIMIZE_H_
#define CQA_CQ_MINIMIZE_H_

#include "cq/cq.h"

namespace cqa {

/// The minimized equivalent of q (tableau = core of q's tableau).
ConjunctiveQuery Minimize(const ConjunctiveQuery& q);

/// True if q is already minimal (its tableau is a core).
bool IsMinimal(const ConjunctiveQuery& q);

}  // namespace cqa

#endif  // CQA_CQ_MINIMIZE_H_
