// Conjunctive queries (paper, Section 2): existential-conjunctive formulas
// in rule notation Q(x̄) :- R1(x̄1), ..., Rm(x̄m). Variables are dense ints;
// the free tuple x̄ may repeat variables. The number of joins is m - 1.

#ifndef CQA_CQ_CQ_H_
#define CQA_CQ_CQ_H_

#include <string>
#include <vector>

#include "data/vocabulary.h"

namespace cqa {

/// A single atom R(v_1, ..., v_k) of a CQ body.
struct Atom {
  RelationId rel;
  std::vector<int> vars;

  bool operator==(const Atom& other) const {
    return rel == other.rel && vars == other.vars;
  }
};

/// A conjunctive query. Build with AddVariable/AddAtom/SetFreeVariables,
/// then call Validate() (CHECK-fails on malformed queries).
class ConjunctiveQuery {
 public:
  explicit ConjunctiveQuery(VocabularyPtr vocab);

  const VocabularyPtr& vocab() const { return vocab_; }

  /// Adds a variable with an optional display name; returns its id.
  int AddVariable(std::string name = "");

  /// Adds `k` variables, returns the first id.
  int AddVariables(int k);

  /// Adds atom rel(vars). Arity must match; duplicate atoms are ignored.
  void AddAtom(RelationId rel, std::vector<int> vars);

  /// Sets the free tuple x̄ (may repeat variables; may be empty = Boolean).
  void SetFreeVariables(std::vector<int> free_vars);

  int num_variables() const { return num_vars_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<int>& free_variables() const { return free_vars_; }
  bool IsBoolean() const { return free_vars_.empty(); }

  /// Number of joins: number of atoms minus one (paper convention).
  int NumJoins() const { return static_cast<int>(atoms_.size()) - 1; }

  const std::string& variable_name(int v) const;
  void SetVariableName(int v, std::string name);

  /// CHECK-fails unless: at least one atom, all vars in range, every
  /// variable occurs in some atom.
  void Validate() const;

 private:
  VocabularyPtr vocab_;
  int num_vars_ = 0;
  std::vector<Atom> atoms_;
  std::vector<int> free_vars_;
  std::vector<std::string> var_names_;
};

/// Renders the query in rule notation, e.g. "Q(x, y) :- E(x, y), E(y, z)".
std::string PrintQuery(const ConjunctiveQuery& q,
                       const std::string& head_name = "Q");

}  // namespace cqa

#endif  // CQA_CQ_CQ_H_
