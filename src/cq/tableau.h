// Tableaux of conjunctive queries (paper, Section 2): the body of Q viewed
// as a database, together with the free tuple x̄ as distinguished elements.
// Variables and elements correspond one-to-one (variable id = element id).

#ifndef CQA_CQ_TABLEAU_H_
#define CQA_CQ_TABLEAU_H_

#include "cq/cq.h"
#include "data/database.h"

namespace cqa {

/// The tableau (T_Q, x̄) of q. Element i is variable i; facts are atoms.
PointedDatabase ToTableau(const ConjunctiveQuery& q);

/// Reconstructs a query from a tableau. Every element becomes a variable,
/// every fact an atom, the distinguished tuple the free tuple. Elements not
/// occurring in any fact are rejected unless they are distinguished... they
/// cannot be expressed as a safe CQ, so this CHECK-fails (library queries
/// always keep variables inside atoms).
ConjunctiveQuery FromTableau(const PointedDatabase& tableau);

/// Boolean shorthand: the tableau of a Boolean query, no distinguished
/// elements.
Database ToBooleanTableau(const ConjunctiveQuery& q);
ConjunctiveQuery BooleanQueryFromStructure(const Database& db);

}  // namespace cqa

#endif  // CQA_CQ_TABLEAU_H_
