// Structural views of a CQ: its graph G(Q) (paper, Section 4), its
// hypergraph H(Q) (Section 6), and the membership predicates for the
// tractable classes studied in the paper.

#ifndef CQA_CQ_PROPERTIES_H_
#define CQA_CQ_PROPERTIES_H_

#include "cq/cq.h"
#include "decomp/hypertree.h"
#include "graph/digraph.h"
#include "hypergraph/hypergraph.h"

namespace cqa {

/// G(Q): nodes = variables; undirected edges {x_i, x_j} for every pair of
/// distinct variables co-occurring in an atom. Represented as a symmetric
/// digraph without loops.
Digraph GraphOfQuery(const ConjunctiveQuery& q);

/// H(Q): nodes = variables; one hyperedge per atom scope.
Hypergraph HypergraphOfQuery(const ConjunctiveQuery& q);

/// Treewidth of G(Q) (exact).
int QueryTreewidth(const ConjunctiveQuery& q);

/// treewidth(G(Q)) <= k: membership in the graph-based class TW(k).
bool IsTreewidthAtMost(const ConjunctiveQuery& q, int k);

/// H(Q) acyclic: membership in AC (= HTW(1)).
bool IsAcyclicQuery(const ConjunctiveQuery& q);

/// Hypertree width of H(Q) <= k: membership in HTW(k).
bool IsHypertreeWidthAtMost(const ConjunctiveQuery& q, int k);

/// Generalized hypertree width of H(Q) <= k: membership in GHTW(k).
bool IsGeneralizedHypertreeWidthAtMost(const ConjunctiveQuery& q, int k);

/// True over the graph vocabulary (single binary relation).
bool IsGraphQuery(const ConjunctiveQuery& q);

}  // namespace cqa

#endif  // CQA_CQ_PROPERTIES_H_
