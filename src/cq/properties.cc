#include "cq/properties.h"

#include "cq/tableau.h"
#include "decomp/treewidth.h"
#include "hypergraph/acyclicity.h"

namespace cqa {

Digraph GraphOfQuery(const ConjunctiveQuery& q) {
  return HypergraphOfQuery(q).PrimalGraph();
}

Hypergraph HypergraphOfQuery(const ConjunctiveQuery& q) {
  Hypergraph h(q.num_variables());
  for (const Atom& a : q.atoms()) {
    h.AddEdge(a.vars);
  }
  return h;
}

int QueryTreewidth(const ConjunctiveQuery& q) {
  return ExactTreewidth(GraphOfQuery(q));
}

bool IsTreewidthAtMost(const ConjunctiveQuery& q, int k) {
  return TreewidthAtMost(GraphOfQuery(q), k);
}

bool IsAcyclicQuery(const ConjunctiveQuery& q) {
  return IsAcyclic(HypergraphOfQuery(q));
}

bool IsHypertreeWidthAtMost(const ConjunctiveQuery& q, int k) {
  return HypertreeWidthAtMost(HypergraphOfQuery(q), k);
}

bool IsGeneralizedHypertreeWidthAtMost(const ConjunctiveQuery& q, int k) {
  return GeneralizedHypertreeWidthAtMost(HypergraphOfQuery(q), k);
}

bool IsGraphQuery(const ConjunctiveQuery& q) {
  return q.vocab()->num_relations() == 1 && q.vocab()->arity(0) == 2;
}

}  // namespace cqa
