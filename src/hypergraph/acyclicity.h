// Hypergraph acyclicity (alpha-acyclicity) and join trees. Acyclic CQs are
// the oldest tractable class (Yannakakis [43]); AC = HTW(1) (paper,
// Section 6). Two independent deciders are provided: GYO ear removal and
// Maier's maximum-spanning-tree join-tree construction (used for evaluation).

#ifndef CQA_HYPERGRAPH_ACYCLICITY_H_
#define CQA_HYPERGRAPH_ACYCLICITY_H_

#include <optional>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace cqa {

/// GYO reduction: repeatedly (a) delete nodes occurring in at most one edge,
/// (b) delete edges contained in another edge. Acyclic iff everything
/// vanishes.
bool IsAcyclicGYO(const Hypergraph& h);

/// A join tree over the hyperedges of a hypergraph: a forest on edge indices
/// such that for every node v, the hyperedges containing v form a connected
/// subtree. Exists iff the hypergraph is acyclic.
struct JoinTree {
  /// parent[i] is the parent edge index of hyperedge i, or -1 for roots.
  std::vector<int> parent;
  /// Children lists (inverse of parent).
  std::vector<std::vector<int>> children;
  /// Root edge indices, one per connected component.
  std::vector<int> roots;
};

/// Builds a join tree via maximum spanning tree of the intersection graph
/// (Maier/Bernstein–Goodman); returns nullopt iff the hypergraph is cyclic.
std::optional<JoinTree> BuildJoinTree(const Hypergraph& h);

/// Convenience: acyclicity via join-tree construction. Tests cross-check
/// this against IsAcyclicGYO.
bool IsAcyclic(const Hypergraph& h);

}  // namespace cqa

#endif  // CQA_HYPERGRAPH_ACYCLICITY_H_
