// Hypergraphs of conjunctive queries (paper, Sections 3 and 6): nodes are
// variables, hyperedges are atom scopes. Includes the two closure operations
// that drive the existence theorem for hypergraph-based classes
// (Theorem 6.1): induced subhypergraphs and edge extensions.

#ifndef CQA_HYPERGRAPH_HYPERGRAPH_H_
#define CQA_HYPERGRAPH_HYPERGRAPH_H_

#include <vector>

#include "graph/digraph.h"

namespace cqa {

/// A finite hypergraph on nodes `0..num_nodes()-1`. Hyperedges are stored as
/// sorted duplicate-free node sets; identical hyperedges are merged.
class Hypergraph {
 public:
  Hypergraph() = default;
  explicit Hypergraph(int num_nodes);

  int num_nodes() const { return n_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  int AddNode();
  int AddNodes(int k);

  /// Adds a hyperedge over `nodes` (deduplicated and sorted). Empty edges
  /// are ignored. Returns the edge index (existing index if duplicate).
  int AddEdge(std::vector<int> nodes);

  /// Edge `i` as a sorted node list.
  const std::vector<int>& edge(int i) const;

  const std::vector<std::vector<int>>& edges() const { return edges_; }

  /// Indices of edges containing node `v`.
  const std::vector<int>& edges_of(int v) const;

  /// The induced subhypergraph on {v : keep[v]}: nodes are relabeled
  /// densely and every edge is intersected with the kept set (paper,
  /// Section 6; empty intersections vanish).
  Hypergraph InducedSubhypergraph(const std::vector<bool>& keep,
                                  std::vector<int>* old_to_new) const;

  /// Edge extension: adds `count` fresh nodes to edge `i` (paper,
  /// Section 6). Returns the first fresh node id.
  int ExtendEdge(int i, int count);

  /// The primal (Gaifman) graph: an undirected clique per hyperedge,
  /// represented as a symmetric digraph. This is the graph G(Q) of
  /// Section 4 when the hypergraph is H(Q).
  Digraph PrimalGraph() const;

 private:
  int n_ = 0;
  std::vector<std::vector<int>> edges_;
  std::vector<std::vector<int>> edges_of_;
};

/// Builds the hypergraph whose edges are the scopes of `db`'s facts (the
/// hypergraph H(Q) when db is the tableau of Q).
Hypergraph HypergraphOfDatabase(const Database& db);

/// The Gaifman graph of a database: for each fact, a clique over its
/// elements (the graph G(Q) when db is the tableau of Q).
Digraph GaifmanGraph(const Database& db);

}  // namespace cqa

#endif  // CQA_HYPERGRAPH_HYPERGRAPH_H_
