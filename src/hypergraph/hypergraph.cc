#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <map>

#include "base/check.h"

namespace cqa {

Hypergraph::Hypergraph(int num_nodes) { AddNodes(num_nodes); }

int Hypergraph::AddNode() {
  edges_of_.emplace_back();
  return n_++;
}

int Hypergraph::AddNodes(int k) {
  CQA_CHECK(k >= 0);
  const int first = n_;
  for (int i = 0; i < k; ++i) AddNode();
  return first;
}

int Hypergraph::AddEdge(std::vector<int> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  if (nodes.empty()) return -1;
  for (const int v : nodes) CQA_CHECK(v >= 0 && v < n_);
  for (int i = 0; i < num_edges(); ++i) {
    if (edges_[i] == nodes) return i;
  }
  const int idx = num_edges();
  for (const int v : nodes) edges_of_[v].push_back(idx);
  edges_.push_back(std::move(nodes));
  return idx;
}

const std::vector<int>& Hypergraph::edge(int i) const {
  CQA_CHECK(i >= 0 && i < num_edges());
  return edges_[i];
}

const std::vector<int>& Hypergraph::edges_of(int v) const {
  CQA_CHECK(v >= 0 && v < n_);
  return edges_of_[v];
}

Hypergraph Hypergraph::InducedSubhypergraph(const std::vector<bool>& keep,
                                            std::vector<int>* old_to_new) const {
  CQA_CHECK(static_cast<int>(keep.size()) == n_);
  std::vector<int> map(n_, -1);
  int next = 0;
  for (int v = 0; v < n_; ++v) {
    if (keep[v]) map[v] = next++;
  }
  Hypergraph out(next);
  for (const auto& e : edges_) {
    std::vector<int> mapped;
    for (const int v : e) {
      if (map[v] >= 0) mapped.push_back(map[v]);
    }
    if (!mapped.empty()) out.AddEdge(std::move(mapped));
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return out;
}

int Hypergraph::ExtendEdge(int i, int count) {
  CQA_CHECK(i >= 0 && i < num_edges());
  CQA_CHECK(count >= 0);
  const int first = AddNodes(count);
  std::vector<int> extended = edges_[i];
  for (int j = 0; j < count; ++j) extended.push_back(first + j);
  // Rebuild edge i in place (stays sorted: fresh ids are largest).
  edges_[i] = extended;
  for (int j = 0; j < count; ++j) edges_of_[first + j].push_back(i);
  return first;
}

Digraph Hypergraph::PrimalGraph() const {
  Digraph g(n_);
  for (const auto& e : edges_) {
    for (size_t i = 0; i < e.size(); ++i) {
      for (size_t j = i + 1; j < e.size(); ++j) {
        g.AddEdge(e[i], e[j]);
        g.AddEdge(e[j], e[i]);
      }
    }
  }
  return g;
}

Hypergraph HypergraphOfDatabase(const Database& db) {
  Hypergraph h(db.num_elements());
  for (RelationId r = 0; r < db.vocab()->num_relations(); ++r) {
    for (const Tuple& t : db.facts(r)) {
      h.AddEdge(std::vector<int>(t.begin(), t.end()));
    }
  }
  return h;
}

Digraph GaifmanGraph(const Database& db) {
  return HypergraphOfDatabase(db).PrimalGraph();
}

}  // namespace cqa
