#include "hypergraph/acyclicity.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"
#include "base/union_find.h"

namespace cqa {

bool IsAcyclicGYO(const Hypergraph& h) {
  // Working copies: edge node-sets and per-node occurrence counts.
  std::vector<std::vector<int>> edges = h.edges();
  std::vector<bool> edge_alive(edges.size(), true);
  std::vector<int> occurrences(h.num_nodes(), 0);
  for (const auto& e : edges) {
    for (const int v : e) ++occurrences[v];
  }
  bool changed = true;
  while (changed) {
    changed = false;
    // (a) Remove nodes that occur in at most one live edge.
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!edge_alive[i]) continue;
      auto& e = edges[i];
      const auto new_end = std::remove_if(e.begin(), e.end(), [&](int v) {
        return occurrences[v] <= 1;
      });
      if (new_end != e.end()) {
        e.erase(new_end, e.end());
        changed = true;
      }
      if (e.empty()) edge_alive[i] = false;
    }
    // (b) Remove edges contained in another live edge.
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!edge_alive[i]) continue;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j || !edge_alive[j]) continue;
        if (std::includes(edges[j].begin(), edges[j].end(), edges[i].begin(),
                          edges[i].end())) {
          // Tie-break: identical sets must not delete each other; keep the
          // smaller index.
          if (edges[i] == edges[j] && i < j) continue;
          edge_alive[i] = false;
          for (const int v : edges[i]) --occurrences[v];
          changed = true;
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edge_alive[i]) return false;
  }
  return true;
}

namespace {

int IntersectionSize(const std::vector<int>& a, const std::vector<int>& b) {
  int count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

// Checks the join-tree connectedness property: for every node v, the set of
// hyperedges containing v induces a connected subforest.
bool ValidateJoinTree(const Hypergraph& h, const std::vector<int>& parent) {
  const int m = h.num_edges();
  for (int v = 0; v < h.num_nodes(); ++v) {
    const auto& occ = h.edges_of(v);
    if (occ.size() <= 1) continue;
    UnionFind local(m);
    for (int i = 0; i < m; ++i) {
      const int p = parent[i];
      if (p < 0) continue;
      const auto& ei = h.edge(i);
      const auto& ep = h.edge(p);
      if (std::binary_search(ei.begin(), ei.end(), v) &&
          std::binary_search(ep.begin(), ep.end(), v)) {
        local.Union(i, p);
      }
    }
    const int root = local.Find(occ[0]);
    for (const int e : occ) {
      if (local.Find(e) != root) return false;
    }
  }
  return true;
}

}  // namespace

std::optional<JoinTree> BuildJoinTree(const Hypergraph& h) {
  const int m = h.num_edges();
  JoinTree jt;
  jt.parent.assign(m, -1);
  jt.children.assign(m, {});
  if (m == 0) return jt;

  // Kruskal on the intersection graph with weights |e_i ∩ e_j|, descending.
  struct Cand {
    int w, i, j;
  };
  std::vector<Cand> cands;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      const int w = IntersectionSize(h.edge(i), h.edge(j));
      if (w > 0) cands.push_back({w, i, j});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.w > b.w; });
  UnionFind uf(m);
  std::vector<std::vector<int>> adj(m);
  for (const Cand& c : cands) {
    if (uf.Union(c.i, c.j)) {
      adj[c.i].push_back(c.j);
      adj[c.j].push_back(c.i);
    }
  }
  // Orient each component from an arbitrary root.
  std::vector<bool> visited(m, false);
  for (int r = 0; r < m; ++r) {
    if (visited[r]) continue;
    jt.roots.push_back(r);
    std::vector<int> stack = {r};
    visited[r] = true;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const int v : adj[u]) {
        if (!visited[v]) {
          visited[v] = true;
          jt.parent[v] = u;
          jt.children[u].push_back(v);
          stack.push_back(v);
        }
      }
    }
  }
  if (!ValidateJoinTree(h, jt.parent)) return std::nullopt;
  return jt;
}

bool IsAcyclic(const Hypergraph& h) { return BuildJoinTree(h).has_value(); }

}  // namespace cqa
