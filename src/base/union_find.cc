#include "base/union_find.h"

#include "base/check.h"

namespace cqa {

UnionFind::UnionFind(int n) : parent_(n), size_(n, 1), num_sets_(n) {
  CQA_CHECK(n >= 0);
  for (int i = 0; i < n; ++i) parent_[i] = i;
}

int UnionFind::Find(int x) {
  CQA_DCHECK(x >= 0 && x < size());
  int root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const int next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(int a, int b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

std::vector<int> UnionFind::DenseLabels() {
  std::vector<int> label(parent_.size(), -1);
  std::vector<int> root_label(parent_.size(), -1);
  int next = 0;
  for (int i = 0; i < size(); ++i) {
    const int r = Find(i);
    if (root_label[r] < 0) root_label[r] = next++;
    label[i] = root_label[r];
  }
  return label;
}

}  // namespace cqa
