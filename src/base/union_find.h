// Disjoint-set union with path compression and union by size. Used for
// variable-partition manipulation (quotients of tableaux) and for weak
// connectivity in graph utilities.

#ifndef CQA_BASE_UNION_FIND_H_
#define CQA_BASE_UNION_FIND_H_

#include <vector>

namespace cqa {

/// Classic disjoint-set-union structure over elements `0..n-1`.
class UnionFind {
 public:
  /// Creates `n` singleton sets.
  explicit UnionFind(int n);

  /// Returns the canonical representative of `x`'s set.
  int Find(int x);

  /// Merges the sets containing `a` and `b`. Returns true if they were
  /// previously distinct.
  bool Union(int a, int b);

  /// Number of elements.
  int size() const { return static_cast<int>(parent_.size()); }

  /// Number of disjoint sets currently represented.
  int num_sets() const { return num_sets_; }

  /// Returns a dense relabeling: a vector `label` with `label[x]` in
  /// `[0, num_sets())`, equal labels iff same set, labels assigned in order of
  /// first appearance.
  std::vector<int> DenseLabels();

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int num_sets_;
};

}  // namespace cqa

#endif  // CQA_BASE_UNION_FIND_H_
