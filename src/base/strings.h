// Small string helpers shared across the library (joining, splitting,
// trimming, and integer formatting). No locale dependence.

#ifndef CQA_BASE_STRINGS_H_
#define CQA_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cqa {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, returning every (possibly empty) field.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes ASCII whitespace from both ends of `text`.
std::string_view Trim(std::string_view text);

/// True if `text` is a valid identifier: [A-Za-z_][A-Za-z0-9_']*.
bool IsIdentifier(std::string_view text);

}  // namespace cqa

#endif  // CQA_BASE_STRINGS_H_
