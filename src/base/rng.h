// Deterministic random number generation for workload generators and
// randomized property tests. We ship our own generator (xoshiro256**) so that
// seeds produce identical workloads across standard libraries and platforms.

#ifndef CQA_BASE_RNG_H_
#define CQA_BASE_RNG_H_

#include <cstdint>

namespace cqa {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// The same seed yields the same stream on every platform, which keeps the
/// benchmark workloads and property-test sweeps reproducible.
class Rng {
 public:
  /// Creates a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in `[0, bound)`. `bound` must be positive.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform integer in `[lo, hi]` (inclusive). Requires lo <= hi.
  int UniformInRange(int lo, int hi);

  /// Returns a uniform double in `[0, 1)`.
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
};

}  // namespace cqa

#endif  // CQA_BASE_RNG_H_
