#include "base/strings.h"

#include <cctype>

namespace cqa {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  const unsigned char first = static_cast<unsigned char>(text[0]);
  if (!std::isalpha(first) && text[0] != '_') return false;
  for (size_t i = 1; i < text.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (!std::isalnum(c) && text[i] != '_' && text[i] != '\'') return false;
  }
  return true;
}

}  // namespace cqa
