// Lightweight invariant-checking macros used throughout cqapprox.
//
// CQA_CHECK is always on (including release builds): the library manipulates
// small symbolic objects, so the cost is negligible and the diagnostics are
// valuable. CQA_DCHECK compiles out in release builds.

#ifndef CQA_BASE_CHECK_H_
#define CQA_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cqa {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CQA_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace cqa

#define CQA_CHECK(expr)                             \
  do {                                              \
    if (!(expr)) {                                  \
      ::cqa::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                               \
  } while (0)

#ifndef NDEBUG
#define CQA_DCHECK(expr) CQA_CHECK(expr)
#else
#define CQA_DCHECK(expr) \
  do {                   \
  } while (0)
#endif

#endif  // CQA_BASE_CHECK_H_
