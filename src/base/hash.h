// Hash combinators for aggregate keys (tuples, vectors of ids).

#ifndef CQA_BASE_HASH_H_
#define CQA_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cqa {

/// Mixes `value` into `seed` (boost-style combinator with a 64-bit constant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Final avalanche mix (splitmix64 finalizer). Open-addressing tables mask
/// the hash with a power-of-two capacity, so the LOW bits must be uniform;
/// the boost combinator alone leaves small sequential integers (graph
/// vertex ids) highly structured there, which degrades linear probing into
/// long collision runs. Prime-modulus chaining tables do not need this.
inline size_t HashFinalize(size_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Hashes a vector of integers.
template <typename Int>
size_t HashVector(const std::vector<Int>& v) {
  size_t h = v.size();
  for (const Int x : v) h = HashCombine(h, static_cast<size_t>(x));
  return h;
}

/// Hashes a contiguous range of integers. Agrees with HashVector on equal
/// contents, so flat (span-keyed) and materialized (vector-keyed) probe
/// paths may share one table.
template <typename Int>
size_t HashSpan(std::span<const Int> v) {
  size_t h = v.size();
  for (const Int x : v) h = HashCombine(h, static_cast<size_t>(x));
  return h;
}

/// Functor for unordered containers keyed by `std::vector<Int>`.
struct VectorHash {
  template <typename Int>
  size_t operator()(const std::vector<Int>& v) const {
    return HashVector(v);
  }
};

}  // namespace cqa

#endif  // CQA_BASE_HASH_H_
