// Hash combinators for aggregate keys (tuples, vectors of ids).

#ifndef CQA_BASE_HASH_H_
#define CQA_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cqa {

/// Mixes `value` into `seed` (boost-style combinator with a 64-bit constant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes a vector of integers.
template <typename Int>
size_t HashVector(const std::vector<Int>& v) {
  size_t h = v.size();
  for (const Int x : v) h = HashCombine(h, static_cast<size_t>(x));
  return h;
}

/// Functor for unordered containers keyed by `std::vector<Int>`.
struct VectorHash {
  template <typename Int>
  size_t operator()(const std::vector<Int>& v) const {
    return HashVector(v);
  }
};

}  // namespace cqa

#endif  // CQA_BASE_HASH_H_
