// Tight approximations (paper, end of Section 5.1.1): a C-approximation Q'
// of Q is *tight* if no CQ whatsoever (not just in C) sits strictly
// between: there is no Q'' with Q' ⊂ Q'' ⊂ Q. Proposition 5.6 exhibits an
// infinite family (tableaux G_k with tight approximation P_{k+1}), built in
// gadgets/tight.h. The checker below searches the quotient candidate space
// of Q for an intermediate query; by [36] (gap pairs in the hom lattice)
// the check is exact whenever an intermediate witness exists among
// homomorphic images of T_Q, and is reported as bounded otherwise.

#ifndef CQA_CORE_TIGHT_H_
#define CQA_CORE_TIGHT_H_

#include <optional>

#include "core/query_class.h"
#include "cq/cq.h"

namespace cqa {

/// Verdict of a tightness check.
struct TightnessResult {
  bool is_tight_candidate = false;       ///< no witness found
  std::optional<ConjunctiveQuery> between;  ///< a Q'' with Q' ⊂ Q'' ⊂ Q
};

/// Searches for a CQ strictly between q_prime and q among the homomorphic
/// images of (T_Q, x̄). Returns the witness if found.
TightnessResult CheckTightness(const ConjunctiveQuery& q_prime,
                               const ConjunctiveQuery& q);

/// Full tight-approximation test relative to cls: approximation (per the
/// exhaustive verifier) + no intermediate witness in the candidate space.
bool IsTightApproximationCandidate(const ConjunctiveQuery& q_prime,
                                   const ConjunctiveQuery& q,
                                   const QueryClass& cls);

}  // namespace cqa

#endif  // CQA_CORE_TIGHT_H_
