// The tractable CQ classes the paper approximates into (Sections 4 and 6):
// graph-based TW(k) and hypergraph-based AC, HTW(k), GHTW(k). A QueryClass
// bundles the membership predicate with the closure kind that determines
// which candidate tableaux are complete for approximation search
// (Theorem 4.1 for graph-based classes, Theorem 6.1 for hypergraph-based).

#ifndef CQA_CORE_QUERY_CLASS_H_
#define CQA_CORE_QUERY_CLASS_H_

#include <memory>
#include <string>

#include "cq/cq.h"

namespace cqa {

/// A class C of conjunctive queries to approximate into.
class QueryClass {
 public:
  virtual ~QueryClass() = default;

  /// Membership: is q a C-query?
  virtual bool Contains(const ConjunctiveQuery& q) const = 0;

  /// Human-readable name, e.g. "TW(2)".
  virtual std::string name() const = 0;

  /// Graph-based classes are closed under subgraphs, so homomorphic images
  /// (quotients) of the tableau are a complete candidate space
  /// (Theorem 4.1). Hypergraph-based classes additionally need atom
  /// augmentation (Theorem 6.1 / Claim 6.2).
  virtual bool IsGraphBased() const = 0;
};

/// TW(k): treewidth of G(Q) at most k. Graph-based.
std::unique_ptr<QueryClass> MakeTreewidthClass(int k);

/// AC: H(Q) acyclic (= HTW(1)). Hypergraph-based.
std::unique_ptr<QueryClass> MakeAcyclicClass();

/// HTW(k): hypertree width of H(Q) at most k. Hypergraph-based.
std::unique_ptr<QueryClass> MakeHypertreeClass(int k);

/// GHTW(k): generalized hypertree width of H(Q) at most k. Hypergraph-based.
std::unique_ptr<QueryClass> MakeGeneralizedHypertreeClass(int k);

}  // namespace cqa

#endif  // CQA_CORE_QUERY_CLASS_H_
