#include "core/digraph_approx.h"

#include "core/approximator.h"
#include "core/verifier.h"
#include "cq/tableau.h"
#include "hom/homomorphism.h"

namespace cqa {

std::vector<Digraph> AcyclicApproximationsOfDigraph(const Digraph& g) {
  const ConjunctiveQuery q = BooleanQueryFromStructure(g.ToDatabase());
  // Over graphs, AC = TW(1), and TW(1) is graph-based (complete search).
  const auto cls = MakeTreewidthClass(1);
  ApproximationResult result = ComputeApproximations(q, *cls);
  std::vector<Digraph> out;
  out.reserve(result.approximations.size());
  for (const ConjunctiveQuery& approx : result.approximations) {
    out.push_back(Digraph::FromDatabase(ToTableau(approx).db));
  }
  return out;
}

bool IsAcyclicApproximationOfDigraph(const Digraph& t, const Digraph& g) {
  const ConjunctiveQuery q = BooleanQueryFromStructure(g.ToDatabase());
  const ConjunctiveQuery qt = BooleanQueryFromStructure(t.ToDatabase());
  const auto cls = MakeTreewidthClass(1);
  return VerifyApproximation(qt, q, *cls).is_approximation;
}

bool IsExactHomomorphismTarget(const Digraph& g, const Digraph& t) {
  const Database dg = g.ToDatabase();
  const Database dt = t.ToDatabase();
  if (!ExistsHomomorphism(dg, dt)) return false;
  return !ExistsHomToProperSubstructure(dg, dt);
}

}  // namespace cqa
