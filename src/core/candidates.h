// Candidate tableaux for approximation search.
//
// Graph-based classes (Theorem 4.1): every C-approximation of Q is
// equivalent to a query whose tableau is a homomorphic image of (T_Q, x̄);
// homomorphic images are exactly quotients by variable partitions, so
// enumerating set partitions is a complete candidate space.
//
// Hypergraph-based classes (Theorem 6.1 / Claim 6.2, Example 6.6): quotients
// alone are incomplete — approximations may add atoms over the image domain
// (and padded atoms with fresh variables, the "extended subset" trick). We
// therefore augment out-of-class quotients with up to `augmentation_budget`
// extra atoms whose positions hold image elements or fresh variables.

#ifndef CQA_CORE_CANDIDATES_H_
#define CQA_CORE_CANDIDATES_H_

#include <functional>

#include "data/database.h"

namespace cqa {

/// Tuning knobs for candidate enumeration.
struct CandidateOptions {
  /// Max number of extra atoms added to an out-of-class quotient
  /// (hypergraph-based classes only).
  int augmentation_budget = 1;

  /// Hard cap on the number of candidates visited (< 0 = unlimited).
  long long max_candidates = -1;
};

/// Calls `visit` for every quotient of `tableau` by a partition of its
/// elements (Bell(n) many). Enumeration stops early if `visit` returns
/// false. This is the complete space for graph-based classes.
void ForEachQuotientCandidate(
    const PointedDatabase& tableau,
    const std::function<bool(const PointedDatabase&)>& visit);

/// Calls `visit` for every augmentation of `base` (a quotient image) with
/// 1..budget extra facts. Each extra fact fills a relation's positions with
/// existing elements of `base` or fresh elements (each fresh element used
/// once); at least two distinct existing elements are required, since only
/// such atoms can change hypergraph-class membership. Enumeration stops
/// early if `visit` returns false.
void ForEachAugmentation(
    const PointedDatabase& base, int budget,
    const std::function<bool(const PointedDatabase&)>& visit);

}  // namespace cqa

#endif  // CQA_CORE_CANDIDATES_H_
