// Structural classification of approximations over graphs (paper,
// Section 5): the Boolean trichotomy (Theorem 5.1), the loop dichotomy for
// non-Boolean queries (Theorem 5.8), its treewidth-k generalization
// (Theorem 5.10), and the nontriviality criterion (Corollary 5.11).

#ifndef CQA_CORE_STRUCTURE_H_
#define CQA_CORE_STRUCTURE_H_

#include <string>

#include "cq/cq.h"

namespace cqa {

/// The three regimes of Theorem 5.1 for Boolean graph CQs.
enum class TableauClass {
  kNotBipartite,        ///< only the trivial approximation E(x,x)
  kBipartiteUnbalanced, ///< only the trivial bipartite approximation K2<->
  kBipartiteBalanced,   ///< nontrivial approximations, no E(x,y),E(y,x) pair
};

std::string ToString(TableauClass c);

/// Classifies the tableau of a Boolean CQ over graphs (CHECK-fails
/// otherwise). Both tests run in polynomial time (paper remark after
/// Theorem 5.1).
TableauClass ClassifyBooleanGraphTableau(const ConjunctiveQuery& q);

/// Theorem 5.8 (non-Boolean dichotomy): true iff the tableau is bipartite,
/// iff q has an acyclic approximation without an E(x,x) subgoal.
bool HasLoopFreeAcyclicApproximation(const ConjunctiveQuery& q);

/// Theorem 5.10: true iff the tableau is (k+1)-colorable, iff q has a
/// TW(k)-approximation without an E(x,x) subgoal.
bool HasLoopFreeTreewidthApproximation(const ConjunctiveQuery& q, int k);

/// Corollary 5.11 (Boolean): true iff the tableau is (k+1)-colorable, iff
/// q has a nontrivial TW(k)-approximation.
bool HasNontrivialTreewidthApproximation(const ConjunctiveQuery& q, int k);

}  // namespace cqa

#endif  // CQA_CORE_STRUCTURE_H_
