#include "core/tight.h"

#include "core/candidates.h"
#include "core/verifier.h"
#include "cq/containment.h"
#include "cq/properties.h"
#include "cq/tableau.h"
#include "graph/standard.h"

namespace cqa {

TightnessResult CheckTightness(const ConjunctiveQuery& q_prime,
                               const ConjunctiveQuery& q) {
  TightnessResult result;
  result.is_tight_candidate = true;
  auto consider = [&](const ConjunctiveQuery& cand_query) {
    if (IsStrictlyContainedIn(q_prime, cand_query) &&
        IsStrictlyContainedIn(cand_query, q)) {
      result.is_tight_candidate = false;
      result.between = cand_query;
      return false;
    }
    return true;
  };
  // Witness family 1: homomorphic images of (T_Q, x̄).
  const PointedDatabase tableau = ToTableau(q);
  ForEachQuotientCandidate(tableau, [&](const PointedDatabase& cand) {
    return consider(FromTableau(cand));
  });
  if (!result.is_tight_candidate) return result;
  // Witness family 2 (Boolean graph queries): the standard hom-lattice
  // landmarks K_m<-> and directed cycles — these catch gaps the quotient
  // space misses, e.g. K_4<-> strictly between E(x,x) and the triangle.
  if (q.IsBoolean() && IsGraphQuery(q)) {
    for (int m = 2; m <= 5; ++m) {
      if (!consider(BooleanQueryFromStructure(
              CompleteDigraph(m).ToDatabase()))) {
        return result;
      }
    }
    for (int m = 2; m <= 6; ++m) {
      if (!consider(
              BooleanQueryFromStructure(DirectedCycle(m).ToDatabase()))) {
        return result;
      }
    }
  }
  return result;
}

bool IsTightApproximationCandidate(const ConjunctiveQuery& q_prime,
                                   const ConjunctiveQuery& q,
                                   const QueryClass& cls) {
  if (!VerifyApproximation(q_prime, q, cls).is_approximation) return false;
  return CheckTightness(q_prime, q).is_tight_candidate;
}

}  // namespace cqa
