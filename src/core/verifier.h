// The identification problem (paper, Section 4.3): given Q and Q' ∈ C,
// decide whether Q' is a C-approximation of Q. DP-complete in general
// (Theorem 4.12); solved here by checking containment plus searching the
// candidate space for a strictly better C-query.

#ifndef CQA_CORE_VERIFIER_H_
#define CQA_CORE_VERIFIER_H_

#include <optional>

#include "core/approximator.h"
#include "core/query_class.h"
#include "cq/cq.h"

namespace cqa {

/// Verdict of an approximation check.
struct VerificationResult {
  bool is_approximation = false;
  /// When rejected because a strictly better C-query exists, a witness Q''
  /// with Q' ⊂ Q'' ⊆ Q.
  std::optional<ConjunctiveQuery> better_witness;
  /// Rejection reasons for diagnostics.
  bool failed_class_membership = false;
  bool failed_containment = false;
};

/// Checks whether q_prime is a C-approximation of q. Exact for graph-based
/// classes (the candidate space of Theorem 4.1 is complete); exact up to
/// the augmentation budget for hypergraph-based classes.
VerificationResult VerifyApproximation(const ConjunctiveQuery& q_prime,
                                       const ConjunctiveQuery& q,
                                       const QueryClass& cls,
                                       const ApproximationOptions& options =
                                           {});

}  // namespace cqa

#endif  // CQA_CORE_VERIFIER_H_
