// The graph-theoretic reinterpretation (paper, Corollary 4.10 and
// Corollary 5.4): acyclic approximations of digraphs. An acyclic digraph T
// is an acyclic approximation of G if G -> T and there is no acyclic T'
// with G -> T' strictly below T. "Acyclic" is the query-class sense,
// AC = TW(1) over graphs: loops and 2-cycles are allowed; underlying cycles
// of length >= 3 are not.

#ifndef CQA_CORE_DIGRAPH_APPROX_H_
#define CQA_CORE_DIGRAPH_APPROX_H_

#include <vector>

#include "graph/digraph.h"

namespace cqa {

/// All acyclic approximations of G (cores, pairwise non-equivalent).
std::vector<Digraph> AcyclicApproximationsOfDigraph(const Digraph& g);

/// Checks whether T is an acyclic approximation of G (Graph Acyclic
/// Approximation, the DP-complete problem of Theorem 4.12), by complete
/// candidate search.
bool IsAcyclicApproximationOfDigraph(const Digraph& t, const Digraph& g);

/// The Exact Acyclic Homomorphism condition (Section 4.3): G -> T but no
/// homomorphism from G into a proper subgraph of T.
bool IsExactHomomorphismTarget(const Digraph& g, const Digraph& t);

}  // namespace cqa

#endif  // CQA_CORE_DIGRAPH_APPROX_H_
