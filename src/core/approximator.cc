#include "core/approximator.h"

#include <algorithm>
#include <unordered_map>

#include "base/check.h"
#include "base/hash.h"
#include "cq/tableau.h"
#include "hom/core.h"
#include "hom/homomorphism.h"

namespace cqa {
namespace {

// Cheap isomorphism-invariant fingerprint of a pointed database, used to
// bucket candidates before the (exact) hom-equivalence dedup. Equivalent
// cores are isomorphic, so they always share a fingerprint.
size_t Fingerprint(const PointedDatabase& pdb) {
  const Database& db = pdb.db;
  size_t h = static_cast<size_t>(db.num_elements());
  h = HashCombine(h, pdb.distinguished.size());
  // Per-relation fact counts.
  for (RelationId r = 0; r < db.vocab()->num_relations(); ++r) {
    h = HashCombine(h, db.facts(r).size());
  }
  // Sorted per-element occurrence profiles. Accumulation is additive so the
  // profile is independent of fact enumeration order (isomorphism-invariant).
  std::vector<size_t> profile(db.num_elements(), 0);
  for (RelationId r = 0; r < db.vocab()->num_relations(); ++r) {
    for (const Tuple& t : db.facts(r)) {
      for (size_t i = 0; i < t.size(); ++i) {
        profile[t[i]] += HashCombine(static_cast<size_t>(r) + 1, i + 1);
      }
    }
  }
  // Distinguished positions fold in their element profile.
  size_t dist = 0;
  for (const Element e : pdb.distinguished) {
    dist = HashCombine(dist, profile[e]);
  }
  std::sort(profile.begin(), profile.end());
  for (const size_t p : profile) h = HashCombine(h, p);
  return HashCombine(h, dist);
}

struct Pool {
  std::vector<PointedDatabase> members;
  std::unordered_map<size_t, std::vector<int>> buckets;

  // Inserts a (minimized) candidate unless an equivalent member exists.
  void Insert(PointedDatabase core) {
    const size_t fp = Fingerprint(core);
    auto& bucket = buckets[fp];
    for (const int idx : bucket) {
      if (ExistsHomomorphism(members[idx], core) &&
          ExistsHomomorphism(core, members[idx])) {
        return;
      }
    }
    bucket.push_back(static_cast<int>(members.size()));
    members.push_back(std::move(core));
  }
};

}  // namespace

ApproximationResult ComputeApproximations(const ConjunctiveQuery& q,
                                          const QueryClass& cls,
                                          const ApproximationOptions& options) {
  q.Validate();
  const PointedDatabase tableau = ToTableau(q);
  ApproximationResult result;
  result.provably_complete = cls.IsGraphBased();

  Pool pool;
  long long budget = options.candidates.max_candidates;
  auto consume = [&]() {
    ++result.candidates_considered;
    if (budget < 0) return true;
    return result.candidates_considered < budget;
  };

  ForEachQuotientCandidate(tableau, [&](const PointedDatabase& cand) {
    const ConjunctiveQuery cand_query = FromTableau(cand);
    if (cls.Contains(cand_query)) {
      ++result.candidates_in_class;
      pool.Insert(ComputeCore(cand));
    } else if (!cls.IsGraphBased() &&
               options.candidates.augmentation_budget > 0) {
      ForEachAugmentation(
          cand, options.candidates.augmentation_budget,
          [&](const PointedDatabase& aug) {
            if (cls.Contains(FromTableau(aug))) {
              ++result.candidates_in_class;
              pool.Insert(ComputeCore(aug));
            }
            return consume();
          });
    }
    return consume();
  });
  CQA_CHECK(!pool.members.empty());

  // Keep →-minimal tableaux: c survives iff no other member maps strictly
  // into it (T_d -> T_c without T_c -> T_d), i.e., Q_c ⊂ Q_d.
  const int m = static_cast<int>(pool.members.size());
  std::vector<bool> dominated(m, false);
  for (int c = 0; c < m; ++c) {
    for (int d = 0; d < m && !dominated[c]; ++d) {
      if (d == c || dominated[d]) continue;
      if (ExistsHomomorphism(pool.members[d], pool.members[c]) &&
          !ExistsHomomorphism(pool.members[c], pool.members[d])) {
        dominated[c] = true;
      }
    }
  }
  for (int c = 0; c < m; ++c) {
    if (!dominated[c]) {
      result.approximations.push_back(FromTableau(pool.members[c]));
    }
  }
  return result;
}

ConjunctiveQuery ComputeOneApproximation(const ConjunctiveQuery& q,
                                         const QueryClass& cls,
                                         const ApproximationOptions& options) {
  ApproximationResult result = ComputeApproximations(q, cls, options);
  CQA_CHECK(!result.approximations.empty());
  return std::move(result.approximations.front());
}

}  // namespace cqa
