#include "core/overapprox.h"

#include <algorithm>

#include "base/check.h"
#include "cq/containment.h"
#include "cq/minimize.h"

namespace cqa {
namespace {

// Builds the subquery of q induced by the atom subset `mask`, or nullopt
// if some free variable loses all its occurrences (unsafe head).
std::optional<ConjunctiveQuery> Subquery(const ConjunctiveQuery& q,
                                         uint64_t mask) {
  const int m = static_cast<int>(q.atoms().size());
  std::vector<bool> var_used(q.num_variables(), false);
  for (int i = 0; i < m; ++i) {
    if ((mask >> i) & 1) {
      for (const int v : q.atoms()[i].vars) var_used[v] = true;
    }
  }
  for (const int v : q.free_variables()) {
    if (!var_used[v]) return std::nullopt;
  }
  // Relabel the surviving variables densely.
  std::vector<int> relabel(q.num_variables(), -1);
  ConjunctiveQuery sub(q.vocab());
  for (int v = 0; v < q.num_variables(); ++v) {
    if (var_used[v]) {
      relabel[v] = sub.AddVariable(q.variable_name(v));
    }
  }
  for (int i = 0; i < m; ++i) {
    if ((mask >> i) & 1) {
      std::vector<int> vars;
      vars.reserve(q.atoms()[i].vars.size());
      for (const int v : q.atoms()[i].vars) vars.push_back(relabel[v]);
      sub.AddAtom(q.atoms()[i].rel, std::move(vars));
    }
  }
  std::vector<int> free_vars;
  free_vars.reserve(q.free_variables().size());
  for (const int v : q.free_variables()) free_vars.push_back(relabel[v]);
  sub.SetFreeVariables(std::move(free_vars));
  sub.Validate();
  return sub;
}

}  // namespace

OverapproximationResult ComputeOverapproximations(const ConjunctiveQuery& q,
                                                  const QueryClass& cls) {
  q.Validate();
  const int m = static_cast<int>(q.atoms().size());
  CQA_CHECK(m <= 20);  // subsets are enumerated explicitly
  OverapproximationResult result;
  std::vector<ConjunctiveQuery> pool;
  for (uint64_t mask = 1; mask < (uint64_t{1} << m); ++mask) {
    ++result.candidates_considered;
    const auto sub = Subquery(q, mask);
    if (!sub.has_value()) continue;
    if (!cls.Contains(*sub)) continue;
    ++result.candidates_in_class;
    ConjunctiveQuery minimized = Minimize(*sub);
    // Dedup up to equivalence.
    bool duplicate = false;
    for (const auto& existing : pool) {
      if (AreEquivalent(existing, minimized)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) pool.push_back(std::move(minimized));
  }
  // Keep the ⊆-minimal elements: c survives iff no other pool member is
  // strictly contained in it.
  const int p = static_cast<int>(pool.size());
  std::vector<bool> dominated(p, false);
  for (int c = 0; c < p; ++c) {
    for (int d = 0; d < p && !dominated[c]; ++d) {
      if (d == c || dominated[d]) continue;
      if (IsStrictlyContainedIn(pool[d], pool[c])) dominated[c] = true;
    }
  }
  for (int c = 0; c < p; ++c) {
    if (!dominated[c]) {
      result.overapproximations.push_back(std::move(pool[c]));
    }
  }
  return result;
}

ConjunctiveQuery ComputeOneOverapproximation(const ConjunctiveQuery& q,
                                             const QueryClass& cls) {
  OverapproximationResult result = ComputeOverapproximations(q, cls);
  CQA_CHECK(!result.overapproximations.empty());
  return std::move(result.overapproximations.front());
}

}  // namespace cqa
