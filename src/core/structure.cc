#include "core/structure.h"

#include "base/check.h"
#include "cq/properties.h"
#include "cq/tableau.h"
#include "graph/analysis.h"
#include "graph/coloring.h"

namespace cqa {
namespace {

Digraph TableauDigraph(const ConjunctiveQuery& q) {
  CQA_CHECK(IsGraphQuery(q));
  return Digraph::FromDatabase(ToTableau(q).db);
}

}  // namespace

std::string ToString(TableauClass c) {
  switch (c) {
    case TableauClass::kNotBipartite:
      return "not-bipartite";
    case TableauClass::kBipartiteUnbalanced:
      return "bipartite-unbalanced";
    case TableauClass::kBipartiteBalanced:
      return "bipartite-balanced";
  }
  return "?";
}

TableauClass ClassifyBooleanGraphTableau(const ConjunctiveQuery& q) {
  CQA_CHECK(q.IsBoolean());
  const Digraph t = TableauDigraph(q);
  if (!IsBipartite(t)) return TableauClass::kNotBipartite;
  if (!IsBalanced(t)) return TableauClass::kBipartiteUnbalanced;
  return TableauClass::kBipartiteBalanced;
}

bool HasLoopFreeAcyclicApproximation(const ConjunctiveQuery& q) {
  return IsBipartite(TableauDigraph(q));
}

bool HasLoopFreeTreewidthApproximation(const ConjunctiveQuery& q, int k) {
  CQA_CHECK(k >= 1);
  return IsKColorable(TableauDigraph(q), k + 1);
}

bool HasNontrivialTreewidthApproximation(const ConjunctiveQuery& q, int k) {
  CQA_CHECK(q.IsBoolean());
  return HasLoopFreeTreewidthApproximation(q, k);
}

}  // namespace cqa
