#include "core/claim62.h"

#include <algorithm>
#include <map>
#include <vector>

#include "base/check.h"
#include "cq/tableau.h"
#include "hom/homomorphism.h"

namespace cqa {

std::optional<ConjunctiveQuery> BuildClaim62Witness(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime) {
  CQA_CHECK(*q.vocab() == *q_prime.vocab());
  const PointedDatabase tq = ToTableau(q);
  const PointedDatabase tqp = ToTableau(q_prime);
  // Q' ⊆ Q iff (T_Q, x̄) -> (T_Q', x̄').
  const auto h = FindHomomorphism(tq, tqp);
  if (!h.has_value()) return std::nullopt;

  const Database& dqp = tqp.db;
  // U := the active image of h.
  std::vector<bool> in_u(dqp.num_elements(), false);
  for (const Element e : *h) in_u[e] = true;

  // T := facts of T_Q' whose elements all lie in U (re-labeled into a fresh
  // database over U ∪ fresh pads).
  std::vector<Element> relabel(dqp.num_elements(), -1);
  Database t_double_prime(q.vocab());
  for (Element e = 0; e < dqp.num_elements(); ++e) {
    if (in_u[e]) {
      relabel[e] = t_double_prime.AddElement();
      t_double_prime.SetElementName(relabel[e], dqp.ElementName(e));
    }
  }
  auto scope_of = [](const Tuple& tuple) {
    std::vector<Element> s(tuple.begin(), tuple.end());
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    return s;
  };
  // Scopes U_t of the kept facts (to recognize extended subsets).
  std::vector<std::vector<Element>> kept_scopes;
  for (RelationId r = 0; r < q.vocab()->num_relations(); ++r) {
    for (const Tuple& tuple : dqp.facts(r)) {
      const bool inside = std::all_of(tuple.begin(), tuple.end(),
                                      [&](Element e) { return in_u[e]; });
      if (!inside) continue;
      Tuple mapped(tuple.size());
      for (size_t i = 0; i < tuple.size(); ++i) mapped[i] = relabel[tuple[i]];
      t_double_prime.AddFact(r, mapped);
      kept_scopes.push_back(scope_of(tuple));
    }
  }

  // Extended subsets: X = U_s̄ ∩ U for a crossing tuple s̄ (U_s̄ ⊄ U),
  // X nonempty, and X is not the scope of any kept fact. Pad one fresh
  // copy of s̄ per distinct X (fresh elements replace the outside part).
  std::map<std::vector<Element>, std::pair<RelationId, Tuple>> extended;
  for (RelationId r = 0; r < q.vocab()->num_relations(); ++r) {
    for (const Tuple& tuple : dqp.facts(r)) {
      std::vector<Element> inside_part;
      bool crossing = false;
      for (const Element e : scope_of(tuple)) {
        if (in_u[e]) {
          inside_part.push_back(e);
        } else {
          crossing = true;
        }
      }
      if (!crossing || inside_part.empty()) continue;
      if (std::find(kept_scopes.begin(), kept_scopes.end(), inside_part) !=
          kept_scopes.end()) {
        continue;
      }
      extended.emplace(inside_part, std::make_pair(r, tuple));
    }
  }
  for (const auto& [x, fact] : extended) {
    const auto& [rel, tuple] = fact;
    // Replace each outside element consistently by a fresh element (one
    // fresh element per distinct outside element of this tuple).
    std::map<Element, Element> fresh;
    Tuple padded(tuple.size());
    for (size_t i = 0; i < tuple.size(); ++i) {
      const Element e = tuple[i];
      if (in_u[e]) {
        padded[i] = relabel[e];
      } else {
        const auto it = fresh.find(e);
        if (it != fresh.end()) {
          padded[i] = it->second;
        } else {
          const Element z = t_double_prime.AddElement();
          fresh.emplace(e, z);
          padded[i] = z;
        }
      }
    }
    t_double_prime.AddFact(rel, padded);
  }

  // Distinguished tuple: h(x̄) re-labeled.
  Tuple distinguished(tq.distinguished.size());
  for (size_t i = 0; i < tq.distinguished.size(); ++i) {
    distinguished[i] = relabel[(*h)[tq.distinguished[i]]];
  }
  return FromTableau(PointedDatabase{std::move(t_double_prime),
                                     std::move(distinguished)});
}

}  // namespace cqa
