#include "core/query_class.h"

#include "base/check.h"
#include "cq/properties.h"

namespace cqa {
namespace {

class TreewidthClass final : public QueryClass {
 public:
  explicit TreewidthClass(int k) : k_(k) { CQA_CHECK(k >= 1); }
  bool Contains(const ConjunctiveQuery& q) const override {
    return IsTreewidthAtMost(q, k_);
  }
  std::string name() const override {
    return "TW(" + std::to_string(k_) + ")";
  }
  bool IsGraphBased() const override { return true; }

 private:
  int k_;
};

class AcyclicClass final : public QueryClass {
 public:
  bool Contains(const ConjunctiveQuery& q) const override {
    return IsAcyclicQuery(q);
  }
  std::string name() const override { return "AC"; }
  bool IsGraphBased() const override { return false; }
};

class HypertreeClass final : public QueryClass {
 public:
  explicit HypertreeClass(int k) : k_(k) { CQA_CHECK(k >= 1); }
  bool Contains(const ConjunctiveQuery& q) const override {
    return IsHypertreeWidthAtMost(q, k_);
  }
  std::string name() const override {
    return "HTW(" + std::to_string(k_) + ")";
  }
  bool IsGraphBased() const override { return false; }

 private:
  int k_;
};

class GeneralizedHypertreeClass final : public QueryClass {
 public:
  explicit GeneralizedHypertreeClass(int k) : k_(k) { CQA_CHECK(k >= 1); }
  bool Contains(const ConjunctiveQuery& q) const override {
    return IsGeneralizedHypertreeWidthAtMost(q, k_);
  }
  std::string name() const override {
    return "GHTW(" + std::to_string(k_) + ")";
  }
  bool IsGraphBased() const override { return false; }

 private:
  int k_;
};

}  // namespace

std::unique_ptr<QueryClass> MakeTreewidthClass(int k) {
  return std::make_unique<TreewidthClass>(k);
}

std::unique_ptr<QueryClass> MakeAcyclicClass() {
  return std::make_unique<AcyclicClass>();
}

std::unique_ptr<QueryClass> MakeHypertreeClass(int k) {
  return std::make_unique<HypertreeClass>(k);
}

std::unique_ptr<QueryClass> MakeGeneralizedHypertreeClass(int k) {
  return std::make_unique<GeneralizedHypertreeClass>(k);
}

}  // namespace cqa
