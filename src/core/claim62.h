// The constructive heart of Theorem 6.1 (Claim 6.2): given a CQ Q and a
// hypergraph-based C-query Q' with Q' ⊆ Q, build a C-query Q'' with
// Q' ⊆ Q'' ⊆ Q whose size is bounded by n + (m-1)²·n^{m-1} variables and
// ℓ·n^m atoms. The construction restricts T_Q' to the image of a
// homomorphism from T_Q and re-attaches one fresh-variable "padded" atom
// per *extended subset* — exactly the paper's proof, machine-checkable.
//
// The construction is class-agnostic: it only uses the two closure
// properties (induced subhypergraphs, edge extensions), so the result is
// guaranteed to stay in any class that satisfies them (AC, HTW(k),
// GHTW(k); Lemma 6.4).

#ifndef CQA_CORE_CLAIM62_H_
#define CQA_CORE_CLAIM62_H_

#include <optional>

#include "cq/cq.h"

namespace cqa {

/// Builds the Claim 6.2 witness Q'' for the pair (q, q_prime). Returns
/// nullopt if q_prime is not contained in q (no homomorphism
/// (T_Q, x̄) -> (T_Q', x̄') exists).
std::optional<ConjunctiveQuery> BuildClaim62Witness(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime);

}  // namespace cqa

#endif  // CQA_CORE_CLAIM62_H_
