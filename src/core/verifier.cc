#include "core/verifier.h"

#include "cq/containment.h"
#include "cq/tableau.h"

namespace cqa {

VerificationResult VerifyApproximation(const ConjunctiveQuery& q_prime,
                                       const ConjunctiveQuery& q,
                                       const QueryClass& cls,
                                       const ApproximationOptions& options) {
  VerificationResult result;
  if (!cls.Contains(q_prime)) {
    result.failed_class_membership = true;
    return result;
  }
  if (!IsContainedIn(q_prime, q)) {
    result.failed_containment = true;
    return result;
  }
  // Search the candidate space for Q'' ∈ C with Q' ⊂ Q'' (⊆ Q holds for
  // every candidate by construction).
  const PointedDatabase tableau = ToTableau(q);
  bool beaten = false;
  std::optional<ConjunctiveQuery> witness;
  auto check = [&](const PointedDatabase& cand) {
    const ConjunctiveQuery cand_query = FromTableau(cand);
    if (cls.Contains(cand_query) &&
        IsStrictlyContainedIn(q_prime, cand_query)) {
      beaten = true;
      witness = cand_query;
      return false;  // stop enumeration
    }
    return true;
  };
  ForEachQuotientCandidate(tableau, [&](const PointedDatabase& cand) {
    if (!check(cand)) return false;
    if (!cls.IsGraphBased() && options.candidates.augmentation_budget > 0 &&
        !cls.Contains(FromTableau(cand))) {
      bool keep_going = true;
      ForEachAugmentation(cand, options.candidates.augmentation_budget,
                          [&](const PointedDatabase& aug) {
                            keep_going = check(aug);
                            return keep_going;
                          });
      if (!keep_going) return false;
    }
    return true;
  });
  if (beaten) {
    result.better_witness = std::move(witness);
    return result;
  }
  result.is_approximation = true;
  return result;
}

}  // namespace cqa
