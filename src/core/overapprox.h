// Overapproximations — the paper's Section 7 future-work notion: a C-query
// Q'' with Q ⊆ Q'' (returns *all* correct answers, possibly more) that is
// minimal such. Existence and complexity are open in general (paper,
// Conclusions); this module implements the natural sound construction:
// subqueries of Q (atom subsets covering the free variables) that fall in
// C, ordered by containment, keeping the ⊆-minimal ones. Every result is a
// genuine overapproximation candidate (Q ⊆ Q'' ∈ C by construction);
// minimality is relative to the subquery space and reported as such.

#ifndef CQA_CORE_OVERAPPROX_H_
#define CQA_CORE_OVERAPPROX_H_

#include <vector>

#include "core/query_class.h"
#include "cq/cq.h"

namespace cqa {

/// Result of an overapproximation search.
struct OverapproximationResult {
  /// Minimal in-class subquery overapproximations, minimized and pairwise
  /// non-equivalent. Empty iff no atom subset covering the free variables
  /// lands in C (cannot happen for AC/TW(k): single atoms are always in
  /// class).
  std::vector<ConjunctiveQuery> overapproximations;
  long long candidates_considered = 0;
  long long candidates_in_class = 0;
};

/// Computes subquery overapproximations of q within cls. Exponential in
/// the number of atoms (subsets), like the underapproximation engine.
OverapproximationResult ComputeOverapproximations(const ConjunctiveQuery& q,
                                                  const QueryClass& cls);

/// Convenience: one overapproximation (the first found).
ConjunctiveQuery ComputeOneOverapproximation(const ConjunctiveQuery& q,
                                             const QueryClass& cls);

}  // namespace cqa

#endif  // CQA_CORE_OVERAPPROX_H_
