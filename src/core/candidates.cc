#include "core/candidates.h"

#include <algorithm>

#include "base/check.h"
#include "hom/partitions.h"

namespace cqa {

void ForEachQuotientCandidate(
    const PointedDatabase& tableau,
    const std::function<bool(const PointedDatabase&)>& visit) {
  EnumerateSetPartitions(
      tableau.db.num_elements(),
      [&](const std::vector<int>& labels, int num_blocks) {
        return visit(QuotientDatabase(tableau, labels, num_blocks));
      });
}

namespace {

// One augmentation atom: a relation plus, per position, either an existing
// element id or -1 (fresh element, each occurrence distinct).
struct AugAtom {
  RelationId rel;
  std::vector<int> pattern;
};

// Applies an atom pattern to `db`, materializing fresh elements.
void ApplyAtom(Database* db, const AugAtom& atom) {
  Tuple t(atom.pattern.size());
  for (size_t i = 0; i < atom.pattern.size(); ++i) {
    t[i] = atom.pattern[i] >= 0 ? atom.pattern[i] : db->AddElement();
  }
  db->AddFact(atom.rel, std::move(t));
}

// Enumerates all patterns for relation `rel` over `n` existing elements.
// Only patterns with at least two distinct existing elements are produced —
// atoms with fewer cannot affect hypergraph-class membership (their
// hyperedge GYO-reduces away).
void ForEachPattern(const Vocabulary& vocab, RelationId rel, int n,
                    const std::function<void(const AugAtom&)>& emit) {
  const int arity = vocab.arity(rel);
  AugAtom atom;
  atom.rel = rel;
  atom.pattern.assign(arity, -1);
  // Odometer over (n + 1) symbols per position: -1 (fresh) or 0..n-1.
  std::vector<int> digits(arity, 0);
  for (;;) {
    for (int i = 0; i < arity; ++i) {
      atom.pattern[i] = digits[i] - 1;  // digit 0 => fresh (-1)
    }
    std::vector<int> distinct;
    for (const int p : atom.pattern) {
      if (p >= 0) distinct.push_back(p);
    }
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (distinct.size() >= 2) emit(atom);
    int pos = 0;
    while (pos < arity && ++digits[pos] > n) {
      digits[pos] = 0;
      ++pos;
    }
    if (pos == arity) break;
  }
}

}  // namespace

void ForEachAugmentation(
    const PointedDatabase& base, int budget,
    const std::function<bool(const PointedDatabase&)>& visit) {
  CQA_CHECK(budget >= 0);
  if (budget == 0) return;
  const Vocabulary& vocab = *base.db.vocab();
  const int n = base.db.num_elements();

  // Collect all candidate atoms once (patterns refer to base elements only;
  // fresh elements of one atom are not visible to another).
  std::vector<AugAtom> atoms;
  for (RelationId r = 0; r < vocab.num_relations(); ++r) {
    ForEachPattern(vocab, r, n, [&](const AugAtom& a) { atoms.push_back(a); });
  }

  bool keep_going = true;
  // Choose a non-decreasing sequence of up to `budget` atoms (avoids
  // visiting permutations of the same multiset twice).
  std::function<void(const PointedDatabase&, size_t, int)> rec =
      [&](const PointedDatabase& current, size_t start, int left) {
        if (!keep_going || left == 0) return;
        for (size_t i = start; i < atoms.size() && keep_going; ++i) {
          // Skip atoms that are already facts (no fresh positions).
          bool has_fresh = false;
          for (const int p : atoms[i].pattern) has_fresh |= (p < 0);
          if (!has_fresh) {
            Tuple t(atoms[i].pattern.begin(), atoms[i].pattern.end());
            if (current.db.HasFact(atoms[i].rel, t)) continue;
          }
          PointedDatabase next = current;
          ApplyAtom(&next.db, atoms[i]);
          if (!visit(next)) {
            keep_going = false;
            return;
          }
          rec(next, i, left - 1);
        }
      };
  rec(base, 0, budget);
}

}  // namespace cqa
