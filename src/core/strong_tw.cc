#include "core/strong_tw.h"

#include "core/query_class.h"
#include "core/verifier.h"
#include "cq/properties.h"

namespace cqa {

bool HasMaximumTreewidth(const ConjunctiveQuery& q) {
  const Digraph g = GraphOfQuery(q);
  const int n = g.num_nodes();
  if (n <= 2) return false;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (!g.HasEdge(u, v)) return false;
    }
  }
  return true;
}

bool IsPotentialStrongTreewidthApproximation(
    const ConjunctiveQuery& q_prime) {
  // G(Q') must have at most 2 nodes: count variables that co-occur with a
  // distinct variable... simply count nodes of G(Q'), which equals the
  // number of variables.
  return q_prime.num_variables() <= 2;
}

bool IsStrongTreewidthApproximation(const ConjunctiveQuery& q_prime,
                                    const ConjunctiveQuery& q) {
  if (!HasMaximumTreewidth(q)) return false;
  const auto tw1 = MakeTreewidthClass(1);
  return VerifyApproximation(q_prime, q, *tw1).is_approximation;
}

}  // namespace cqa
