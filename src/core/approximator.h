// The approximation engine — the paper's central algorithm (Definition 3.1,
// Theorem 4.1, Corollaries 4.2/4.3, Theorem 6.1, Corollaries 6.3/6.5).
//
// Given a CQ Q and a tractable class C, compute the C-approximations of Q:
// queries Q' ∈ C with Q' ⊆ Q such that no Q'' ∈ C has Q' ⊂ Q'' ⊆ Q.
// The algorithm enumerates candidate tableaux (quotients of (T_Q, x̄), plus
// atom augmentations for hypergraph-based classes), filters by class
// membership, minimizes, deduplicates up to equivalence, and keeps the
// →-minimal tableaux — exactly the maximally contained queries.

#ifndef CQA_CORE_APPROXIMATOR_H_
#define CQA_CORE_APPROXIMATOR_H_

#include <vector>

#include "core/candidates.h"
#include "core/query_class.h"
#include "cq/cq.h"

namespace cqa {

/// Options for approximation computation.
struct ApproximationOptions {
  CandidateOptions candidates;
};

/// Outcome of an approximation computation.
struct ApproximationResult {
  /// All approximations found, minimized, pairwise non-equivalent.
  std::vector<ConjunctiveQuery> approximations;

  /// Candidates enumerated / passing the class filter (diagnostics; these
  /// back the Figure 1 "time to compute" measurements).
  long long candidates_considered = 0;
  long long candidates_in_class = 0;

  /// True when the candidate space is provably complete, i.e., the result
  /// is the exact set C-APPR_min(Q): always for graph-based classes
  /// (Theorem 4.1); for hypergraph-based classes completeness holds up to
  /// the augmentation budget (Claim 6.2 may need more padded atoms).
  bool provably_complete = false;
};

/// Computes the C-approximations of q. CHECK-fails if no candidate is in
/// the class (cannot happen for the paper's classes: Q_trivial is a
/// quotient and belongs to all of them).
ApproximationResult ComputeApproximations(const ConjunctiveQuery& q,
                                          const QueryClass& cls,
                                          const ApproximationOptions& options =
                                              {});

/// Convenience: one approximation (the first found).
ConjunctiveQuery ComputeOneApproximation(const ConjunctiveQuery& q,
                                         const QueryClass& cls,
                                         const ApproximationOptions& options =
                                             {});

}  // namespace cqa

#endif  // CQA_CORE_APPROXIMATOR_H_
