// Strong treewidth approximations (paper, Section 5.3): TW(1)-
// approximations of queries whose graph G(Q) has the maximum possible
// treewidth (number of variables minus one, i.e., G(Q) is a complete
// graph). Over graphs these trivialize; over higher-arity vocabularies
// they are plentiful (Propositions 5.13-5.15).

#ifndef CQA_CORE_STRONG_TW_H_
#define CQA_CORE_STRONG_TW_H_

#include "cq/cq.h"

namespace cqa {

/// True if G(Q) is complete on > 2 nodes, i.e., q has the maximum possible
/// treewidth (n - 1 > 1) for its variable count.
bool HasMaximumTreewidth(const ConjunctiveQuery& q);

/// True if G(Q') has at most 2 nodes — the necessary shape of any strong
/// treewidth approximation (a 3-node graph of a TW(1) query cannot sit
/// under a complete query graph).
bool IsPotentialStrongTreewidthApproximation(const ConjunctiveQuery& q_prime);

/// Full check: q has maximum treewidth > 1 and q_prime is a
/// TW(1)-approximation of q.
bool IsStrongTreewidthApproximation(const ConjunctiveQuery& q_prime,
                                    const ConjunctiveQuery& q);

}  // namespace cqa

#endif  // CQA_CORE_STRONG_TW_H_
