// The wire protocol's transport layer: length-prefixed JSON frames over a
// TCP byte stream, plus the small POSIX-socket helpers the server and
// client share.
//
// Frame layout (both directions):
//
//     <decimal payload length in bytes> '\n'
//     <payload bytes (one JSON document, net/json.h)> '\n'
//
// The length line makes the protocol self-delimiting without escaping; the
// trailing newline keeps a captured stream human-readable ("JSON lines with
// a length prefix"). A reader that sees EOF *between* frames has observed a
// clean close; EOF inside a frame is a transport error.
//
// All helpers retry EINTR and handle partial reads/writes; writes use
// MSG_NOSIGNAL so a peer reset surfaces as an error, never SIGPIPE.

#ifndef CQA_NET_WIRE_H_
#define CQA_NET_WIRE_H_

#include <optional>
#include <string>
#include <string_view>

namespace cqa {

/// Owning file descriptor (closes on destruction; movable, not copyable).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }
  UniqueFd(UniqueFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) {
      Reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor now (idempotent).
  void Reset();
  /// Releases ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Writes one frame (length line + payload + newline). Returns false and
/// fills `error` on any short write / peer reset.
bool WriteFrame(int fd, std::string_view payload, std::string* error);

/// Buffered frame reader over one descriptor. Not thread-safe (one reader
/// per connection, which is the thread-per-connection model).
class FrameReader {
 public:
  /// Frames whose payload exceeds `max_bytes` are a protocol error (the
  /// connection is desynchronized beyond recovery — close it).
  FrameReader(int fd, size_t max_bytes) : fd_(fd), max_bytes_(max_bytes) {}

  enum class Result {
    kFrame,  ///< one payload delivered
    kEof,    ///< clean EOF at a frame boundary
    kError,  ///< malformed frame / oversized / EOF mid-frame (see `error`)
  };

  Result Next(std::string* payload, std::string* error);

 private:
  /// Pulls more bytes into buf_; false on EOF or read error.
  bool Fill(std::string* error);

  int fd_;
  size_t max_bytes_;
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
};

/// Connects to host:port (IPv4 dotted or "localhost"). Returns an invalid
/// fd and fills `error` on failure.
UniqueFd DialTcp(const std::string& host, int port, std::string* error);

/// Binds and listens on host:port (port 0 = ephemeral); `bound_port`
/// receives the actual port. Returns an invalid fd and fills `error` on
/// failure.
UniqueFd ListenTcp(const std::string& host, int port, int backlog,
                   int* bound_port, std::string* error);

}  // namespace cqa

#endif  // CQA_NET_WIRE_H_
