// CqaClient: the client side of the wire protocol (net/server.h has the
// verb reference). One client owns one connection and is used from one
// thread (requests are strictly request/response on the stream).
//
// Every typed call returns nullopt on failure with the typed error in
// last_error(): the server's error code ("rate_limited", "queue_full",
// "cursor_invalidated", ...) or "transport" when the connection itself
// failed. Call() is the raw escape hatch: it sends any envelope (stamping
// the configured api_key) and returns the decoded response object whether
// ok or not.
//
// Paging: Eval returns the first page plus a resumable cursor token when
// more rows remain; Fetch(cursor) pages forward (each page returns the
// *next* token — tokens are idempotent, so a re-sent token re-reads its
// page); FetchAll drains a cursor to completion. Rows are element-name
// tuples in the server's deterministic sorted order, so pages concatenate
// to exactly the in-process answer set.

#ifndef CQA_NET_CLIENT_H_
#define CQA_NET_CLIENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/json.h"
#include "net/wire.h"

namespace cqa {

class CqaClient {
 public:
  CqaClient() = default;

  /// Connects to a running cqa_server. False (with last_error() code
  /// "transport") on failure. Reconnecting an already-connected client
  /// drops the old connection.
  bool Connect(const std::string& host, int port);

  bool connected() const { return fd_.valid(); }

  /// API key stamped onto every request envelope ("" = anonymous tenant).
  void set_api_key(std::string api_key) { api_key_ = std::move(api_key); }

  struct EvalParams {
    std::string db;
    std::string query;          ///< rule text, e.g. "Q(x) :- E(x, y)"
    std::string mode = "exact"; ///< "exact" | "over" | "under" | "bounds"
    size_t limit = 0;           ///< page size; 0 = server default
    double deadline_ms = 0.0;   ///< 0 = no deadline (EvalLimits semantics)
    long long max_nodes = 0;
    long long max_answers = 0;
  };

  /// One page of answers; `cursor` is non-empty iff more rows remain.
  struct Page {
    std::vector<std::vector<std::string>> rows;
    std::string cursor;
    bool more = false;
  };

  struct EvalResult {
    Page answers;       ///< the mode's primary side (certain, in "bounds")
    Page over;          ///< the possible side ("bounds" only)
    std::string mode;   ///< mode actually served (degradation may rewrite)
    std::string status; ///< "ok" | "deadline_exceeded" | ...
    bool exact = false;
    bool degraded = false;
    bool over_valid = true;
    long long answer_count = 0;
    long long possible_count = 0;  ///< "bounds" only
    Json raw;           ///< the full response object
  };

  std::optional<EvalResult> Eval(const EvalParams& params);
  std::optional<Page> Fetch(const std::string& cursor, size_t limit = 0);
  /// True if the server acknowledged the CLOSE (whether or not the cursor
  /// was still open).
  bool CloseCursor(const std::string& cursor);
  /// Inserts one fact ("E(a, b)"); returns AddFact's verdict (false =
  /// duplicate) — nullopt on refusal.
  std::optional<bool> Publish(const std::string& db, const std::string& fact);
  /// The STATS response object ("streaming" / "cache" / "server" /
  /// "tenants" sections).
  std::optional<Json> Stats();

  /// Starting from `first`, appends every remaining page to `out` until the
  /// cursor is exhausted. False (error in last_error()) if a page fails —
  /// e.g. "cursor_invalidated" after a concurrent PUBLISH.
  bool DrainCursor(const Page& first, size_t limit,
                   std::vector<std::vector<std::string>>* out);

  /// Raw round trip: stamps api_key, sends, decodes. nullopt only on
  /// transport failure; protocol refusals come back as {"ok":false,...}.
  std::optional<Json> Call(Json request);

  struct Error {
    std::string code;     ///< server ErrorCode, or "transport"
    std::string message;
  };
  const Error& last_error() const { return last_error_; }

 private:
  /// Runs Call and unwraps: nullopt + last_error() unless {"ok":true}.
  std::optional<Json> CallChecked(Json request);
  static void ParseRows(const Json& rows,
                        std::vector<std::vector<std::string>>* out);
  static Page ParsePage(const Json& response, const char* rows_key,
                        const char* cursor_key, const char* more_key);

  UniqueFd fd_;
  std::unique_ptr<FrameReader> reader_;
  std::string api_key_;
  Error last_error_;
};

}  // namespace cqa

#endif  // CQA_NET_CLIENT_H_
