#include "net/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <span>
#include <utility>

#include "base/check.h"
#include "base/hash.h"
#include "base/strings.h"
#include "cq/parse.h"
#include "eval/cache.h"
#include "net/json.h"

namespace cqa {
namespace {

Json MakeError(const char* code, std::string message,
               double retry_after_ms = 0.0) {
  Json err = Json::Object();
  err.Set("code", Json::Str(code));
  err.Set("message", Json::Str(std::move(message)));
  Json out = Json::Object();
  out.Set("ok", Json::Bool(false));
  out.Set("error", std::move(err));
  if (retry_after_ms > 0.0) {
    out.Set("retry_after_ms", Json::Number(retry_after_ms));
  }
  return out;
}

Json RowsJson(std::span<const Tuple> rows, const Database& db) {
  Json arr = Json::Array();
  for (const Tuple& t : rows) {
    Json row = Json::Array();
    for (const Element e : t) row.Append(Json::Str(db.ElementName(e)));
    arr.Append(std::move(row));
  }
  return arr;
}

bool ParseMode(const std::string& name, AnswerMode* out) {
  for (const AnswerMode m :
       {AnswerMode::kExact, AnswerMode::kOverApproximate,
        AnswerMode::kUnderApproximate, AnswerMode::kBounds}) {
    if (name == AnswerModeName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

/// Releases the admission slot when a request handler returns.
class AdmissionGuard {
 public:
  AdmissionGuard() = default;
  AdmissionGuard(TenantAdmission* admission, std::string tenant)
      : admission_(admission), tenant_(std::move(tenant)) {}
  ~AdmissionGuard() {
    if (admission_ != nullptr) admission_->Release(tenant_);
  }
  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;

 private:
  TenantAdmission* admission_ = nullptr;
  std::string tenant_;
};

}  // namespace

CqaServer::CqaServer(ServerOptions options)
    : options_(std::move(options)),
      service_(std::make_unique<QueryService>(options_.eval)),
      admission_(options_.admission) {
  std::random_device rd;
  token_secret_ = (static_cast<uint64_t>(rd()) << 32) ^ rd();
}

CqaServer::~CqaServer() { Shutdown(); }

void CqaServer::AddDatabase(std::string name, Database* db) {
  CQA_CHECK(db != nullptr);
  CQA_CHECK(!accept_thread_.joinable());  // before Start
  auto entry = std::make_unique<DbEntry>();
  entry->db = db;
  for (Element e = 0; e < db->num_elements(); ++e) {
    entry->elements.emplace(db->ElementName(e), e);
  }
  std::lock_guard<std::mutex> lock(db_mu_);
  const bool inserted = dbs_.emplace(std::move(name), std::move(entry)).second;
  CQA_CHECK(inserted);  // duplicate database name
}

bool CqaServer::Start(std::string* error) {
  CQA_CHECK(!accept_thread_.joinable());
  listen_fd_ =
      ListenTcp(options_.host, options_.port, /*backlog=*/64, &port_, error);
  if (!listen_fd_.valid()) return false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void CqaServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener gone (shutdown) or unrecoverable
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    const uint64_t id = next_conn_id_++;
    Conn conn;
    conn.fd = UniqueFd(fd);
    conn.thread = std::thread([this, id] { HandleConnection(id); });
    conns_.emplace(id, std::move(conn));
    ReapFinished();
  }
}

void CqaServer::ReapFinished() {
  // Caller holds conn_mu_. Move the finished Conns out, join outside any
  // lock contention concerns (the threads have already announced exit).
  std::vector<Conn> done;
  for (const uint64_t id : finished_conns_) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // Shutdown already took it
    done.push_back(std::move(it->second));
    conns_.erase(it);
  }
  finished_conns_.clear();
  for (Conn& conn : done) {
    if (conn.thread.joinable()) conn.thread.join();
  }
}

void CqaServer::HandleConnection(uint64_t conn_id) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    const auto it = conns_.find(conn_id);
    if (it != conns_.end()) fd = it->second.fd.get();
  }
  if (fd >= 0) {
    FrameReader reader(fd, options_.max_frame_bytes);
    std::string payload;
    for (;;) {
      std::string frame_error;
      const FrameReader::Result r = reader.Next(&payload, &frame_error);
      if (r == FrameReader::Result::kEof) break;
      if (r == FrameReader::Result::kError) {
        // The stream is desynchronized; best-effort error, then close.
        std::string ignored;
        WriteFrame(fd,
                   MakeError(ErrorCode::kBadRequest,
                             "framing error: " + frame_error)
                       .Dump(),
                   &ignored);
        errors_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      std::string parse_error;
      const std::optional<Json> request = Json::Parse(payload, &parse_error);
      Json response =
          request.has_value() && request->is_object()
              ? Dispatch(*request)
              : MakeError(ErrorCode::kBadRequest,
                          request.has_value() ? "request must be an object"
                                              : "bad JSON: " + parse_error);
      if (!response.GetBool("ok")) {
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
      std::string write_error;
      if (!WriteFrame(fd, response.Dump(), &write_error)) break;
    }
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  finished_conns_.push_back(conn_id);
}

Json CqaServer::Dispatch(const Json& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string verb = request.GetString("verb");
  const std::string api_key = request.GetString("api_key");

  if (verb == "STATS") {
    // Monitoring authenticates but is never throttled: a tenant must be
    // able to observe its own rate limiting.
    if (!admission_.Authenticate(api_key).has_value()) {
      return MakeError(ErrorCode::kUnauthenticated, "unknown api_key");
    }
    return HandleStats(request);
  }

  const TenantAdmission::Result admit = admission_.Admit(api_key);
  switch (admit.code) {
    case AdmitCode::kUnknownKey:
      return MakeError(ErrorCode::kUnauthenticated, "unknown api_key");
    case AdmitCode::kRateLimited:
      return MakeError(ErrorCode::kRateLimited,
                       "tenant " + admit.tenant + " over its request rate",
                       admit.retry_after_ms);
    case AdmitCode::kTenantBusy:
      return MakeError(ErrorCode::kTenantBusy,
                       "tenant " + admit.tenant +
                           " at its concurrent-request cap");
    case AdmitCode::kOk:
      break;
  }
  const AdmissionGuard guard(&admission_, admit.tenant);

  if (verb == "EVAL") return HandleEval(request, admit.tenant);
  if (verb == "FETCH") return HandleFetch(request);
  if (verb == "CLOSE") return HandleClose(request);
  if (verb == "PUBLISH") return HandlePublish(request);
  return MakeError(ErrorCode::kBadRequest, "unknown verb: " + verb);
}

CqaServer::DbEntry* CqaServer::FindDb(const std::string& name) {
  std::lock_guard<std::mutex> lock(db_mu_);
  const auto it = dbs_.find(name);
  return it == dbs_.end() ? nullptr : it->second.get();
}

bool CqaServer::ParseLimit(const Json& request, size_t* limit,
                           Json* error_out) const {
  const double raw = request.GetNumber("limit", 0.0);
  if (raw < 0.0 || raw != static_cast<double>(static_cast<long long>(raw))) {
    *error_out =
        MakeError(ErrorCode::kBadRequest, "limit must be a non-negative int");
    return false;
  }
  *limit = raw == 0.0 ? options_.default_limit
                      : std::min(static_cast<size_t>(raw), options_.max_limit);
  return true;
}

Json CqaServer::HandleEval(const Json& request, const std::string& tenant) {
  eval_requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string db_name = request.GetString("db");
  DbEntry* entry = FindDb(db_name);
  if (entry == nullptr) {
    return MakeError(ErrorCode::kUnknownDatabase,
                     "unknown database: " + db_name);
  }
  size_t limit = 0;
  Json error;
  if (!ParseLimit(request, &limit, &error)) return error;
  AnswerMode mode = AnswerMode::kExact;
  if (!ParseMode(request.GetString("mode", "exact"), &mode)) {
    return MakeError(ErrorCode::kBadRequest,
                     "mode must be exact|over|under|bounds");
  }

  // Shared lock: evaluation must never overlap a PUBLISH on this database
  // (the EvalRequest no-mutation contract).
  std::shared_lock<std::shared_mutex> db_lock(entry->rw);

  std::string parse_error;
  const std::optional<ConjunctiveQuery> query = ParseQuery(
      entry->db->vocab(), request.GetString("query"), &parse_error);
  if (!query.has_value()) {
    return MakeError(ErrorCode::kParseError, "bad query: " + parse_error);
  }

  EvalRequest eval{*query, entry->db, mode};
  eval.limits.deadline_ms = request.GetNumber("deadline_ms", 0.0);
  eval.limits.max_nodes =
      static_cast<long long>(request.GetNumber("max_nodes", 0.0));
  eval.limits.max_answers =
      static_cast<long long>(request.GetNumber("max_answers", 0.0));

  // The bridge onto the streaming path: deadlines arm at Submit (queue
  // wait counts) and the PR-6 shedding applies — degraded responses flow
  // through, rejections surface as typed errors behind the per-tenant
  // admission that already passed.
  EvalResponse response;
  try {
    response = service_->Submit(std::move(eval)).get();
  } catch (const SubmitRejectedError& e) {
    return MakeError(e.reason() == SubmitRejectedError::Reason::kQueueFull
                         ? ErrorCode::kQueueFull
                         : ErrorCode::kShuttingDown,
                     e.what());
  }

  CursorResponse cur =
      QueryService::MakeCursors(std::move(response), *entry->db);

  Json out = Json::Object();
  out.Set("ok", Json::Bool(true));
  out.Set("mode", Json::Str(AnswerModeName(cur.meta.mode)));
  out.Set("status", Json::Str(ResponseStatusName(cur.meta.status)));
  out.Set("exact", Json::Bool(cur.meta.exact));
  out.Set("degraded", Json::Bool(cur.meta.degraded));
  out.Set("sharded", Json::Bool(cur.meta.sharded));
  out.Set("engine", Json::Str(EngineKindName(cur.meta.engine)));
  out.Set("arity", Json::Number(static_cast<double>(cur.answers->arity())));
  out.Set("answer_count",
          Json::Number(static_cast<double>(cur.answers->size())));
  out.Set("answers", RowsJson(cur.answers->Page(0, limit), *entry->db));
  const bool more = limit < cur.answers->size();
  out.Set("more", Json::Bool(more));
  if (more) {
    out.Set("cursor",
            Json::Str(RegisterCursor(cur.answers, entry, tenant, limit)));
  }
  if (cur.meta.bounds.has_value()) {
    CQA_CHECK(cur.over != nullptr);
    out.Set("certain_count",
            Json::Number(static_cast<double>(cur.answers->size())));
    out.Set("possible_count",
            Json::Number(static_cast<double>(cur.over->size())));
    out.Set("over_valid", Json::Bool(cur.meta.bounds->over_valid));
    out.Set("over", RowsJson(cur.over->Page(0, limit), *entry->db));
    const bool over_more = limit < cur.over->size();
    out.Set("over_more", Json::Bool(over_more));
    if (over_more) {
      out.Set("over_cursor",
              Json::Str(RegisterCursor(cur.over, entry, tenant, limit)));
    }
  }
  out.Set("plan_ms", Json::Number(cur.meta.plan_ms));
  out.Set("eval_ms", Json::Number(cur.meta.eval_ms));
  return out;
}

Json CqaServer::HandleFetch(const Json& request) {
  fetch_requests_.fetch_add(1, std::memory_order_relaxed);
  uint64_t id = 0;
  size_t offset = 0;
  if (!DecodeToken(request.GetString("cursor"), &id, &offset)) {
    return MakeError(ErrorCode::kBadCursorToken,
                     "malformed or foreign cursor token");
  }
  size_t limit = 0;
  Json error;
  if (!ParseLimit(request, &limit, &error)) return error;

  std::shared_ptr<const AnswerCursor> cursor;
  DbEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(cursor_mu_);
    const auto it = cursors_.find(id);
    if (it == cursors_.end()) {
      return MakeError(ErrorCode::kUnknownCursor,
                       "cursor closed, exhausted, or evicted");
    }
    cursor = it->second.cursor;
    entry = it->second.db_entry;
    cursor_lru_.splice(cursor_lru_.begin(), cursor_lru_, it->second.lru_pos);
  }

  // The snapshot rule: pages only come off the version the cursor
  // evaluated at. The shared lock pairs with PUBLISH's exclusive lock, so
  // this version read cannot tear.
  std::shared_lock<std::shared_mutex> db_lock(entry->rw);
  if (entry->db->version() != cursor->db_version()) {
    {
      std::lock_guard<std::mutex> lock(cursor_mu_);
      const auto it = cursors_.find(id);
      if (it != cursors_.end()) {
        cursor_lru_.erase(it->second.lru_pos);
        cursors_.erase(it);
      }
    }
    cursors_invalidated_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kCursorInvalidated,
                     "database mutated since the cursor's snapshot; "
                     "re-issue the query");
  }

  const std::span<const Tuple> page = cursor->Page(offset, limit);
  const size_t next = offset + page.size();
  const bool more = next < cursor->size();
  Json out = Json::Object();
  out.Set("ok", Json::Bool(true));
  out.Set("answers", RowsJson(page, *entry->db));
  out.Set("more", Json::Bool(more));
  out.Set("done", Json::Bool(!more));
  if (more) {
    out.Set("cursor", Json::Str(EncodeToken(id, next)));
  } else {
    std::lock_guard<std::mutex> lock(cursor_mu_);
    const auto it = cursors_.find(id);
    if (it != cursors_.end()) {
      cursor_lru_.erase(it->second.lru_pos);
      cursors_.erase(it);
    }
  }
  return out;
}

Json CqaServer::HandleClose(const Json& request) {
  uint64_t id = 0;
  size_t offset = 0;
  if (!DecodeToken(request.GetString("cursor"), &id, &offset)) {
    return MakeError(ErrorCode::kBadCursorToken,
                     "malformed or foreign cursor token");
  }
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(cursor_mu_);
    const auto it = cursors_.find(id);
    if (it != cursors_.end()) {
      cursor_lru_.erase(it->second.lru_pos);
      cursors_.erase(it);
      closed = true;
    }
  }
  Json out = Json::Object();
  out.Set("ok", Json::Bool(true));
  out.Set("closed", Json::Bool(closed));
  return out;
}

Json CqaServer::HandlePublish(const Json& request) {
  publish_requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string db_name = request.GetString("db");
  DbEntry* entry = FindDb(db_name);
  if (entry == nullptr) {
    return MakeError(ErrorCode::kUnknownDatabase,
                     "unknown database: " + db_name);
  }
  const std::string fact = request.GetString("fact");
  const size_t open = fact.find('(');
  if (open == std::string::npos || fact.empty() || fact.back() != ')') {
    return MakeError(ErrorCode::kParseError, "malformed fact: " + fact);
  }
  const std::string_view rel_name = Trim(std::string_view(fact).substr(0, open));
  const std::optional<RelationId> rel =
      entry->db->vocab()->FindRelation(rel_name);
  if (!rel.has_value()) {
    return MakeError(ErrorCode::kParseError,
                     "unknown relation: " + std::string(rel_name));
  }

  // Exclusive lock: the mutation must not overlap any evaluation or page
  // fetch on this database (pairs with the shared locks in EVAL/FETCH).
  std::unique_lock<std::shared_mutex> db_lock(entry->rw);
  const std::string_view args =
      std::string_view(fact).substr(open + 1, fact.size() - open - 2);
  Tuple tuple;
  for (const std::string& field : Split(args, ',')) {
    const std::string_view name = Trim(field);
    if (!IsIdentifier(name)) {
      return MakeError(ErrorCode::kParseError,
                       "malformed element name: " + std::string(name));
    }
    const auto it = entry->elements.find(std::string(name));
    if (it != entry->elements.end()) {
      tuple.push_back(it->second);
    } else {
      const Element e = entry->db->AddElement();
      entry->db->SetElementName(e, std::string(name));
      entry->elements.emplace(std::string(name), e);
      tuple.push_back(e);
    }
  }
  if (static_cast<int>(tuple.size()) != entry->db->vocab()->arity(*rel)) {
    return MakeError(ErrorCode::kParseError,
                     "arity mismatch for " + std::string(rel_name));
  }
  const bool inserted =
      service_->Publish(entry->db, *rel, std::move(tuple));
  Json out = Json::Object();
  out.Set("ok", Json::Bool(true));
  out.Set("inserted", Json::Bool(inserted));
  out.Set("version", Json::Number(static_cast<double>(entry->db->version())));
  return out;
}

Json CqaServer::HandleStats(const Json&) {
  stats_requests_.fetch_add(1, std::memory_order_relaxed);
  Json out = Json::Object();
  out.Set("ok", Json::Bool(true));

  const BatchStats streaming = service_->StreamingStats();
  Json s = Json::Object();
  s.Set("jobs", Json::Number(static_cast<double>(streaming.jobs)));
  s.Set("shed_degraded",
        Json::Number(static_cast<double>(streaming.shed_degraded)));
  s.Set("shed_rejected",
        Json::Number(static_cast<double>(streaming.shed_rejected)));
  s.Set("stopped_jobs",
        Json::Number(static_cast<double>(streaming.stopped_jobs)));
  out.Set("streaming", std::move(s));

  Json c = Json::Object();
  if (const EvalCache* cache = service_->serving_cache()) {
    const EvalCacheStats cs = cache->stats();
    c.Set("index_hits", Json::Number(static_cast<double>(cs.index_hits)));
    c.Set("index_misses", Json::Number(static_cast<double>(cs.index_misses)));
    c.Set("index_entries",
          Json::Number(static_cast<double>(cs.index_entries)));
    c.Set("index_bytes", Json::Number(static_cast<double>(cs.index_bytes)));
    c.Set("plan_hits", Json::Number(static_cast<double>(cs.plan_hits)));
    c.Set("plan_misses", Json::Number(static_cast<double>(cs.plan_misses)));
    c.Set("plan_entries",
          Json::Number(static_cast<double>(cs.plan_entries)));
  }
  out.Set("cache", std::move(c));

  const ServerStats ss = stats();
  Json sv = Json::Object();
  sv.Set("connections_accepted",
         Json::Number(static_cast<double>(ss.connections_accepted)));
  sv.Set("requests", Json::Number(static_cast<double>(ss.requests)));
  sv.Set("eval_requests",
         Json::Number(static_cast<double>(ss.eval_requests)));
  sv.Set("fetch_requests",
         Json::Number(static_cast<double>(ss.fetch_requests)));
  sv.Set("publish_requests",
         Json::Number(static_cast<double>(ss.publish_requests)));
  sv.Set("errors", Json::Number(static_cast<double>(ss.errors)));
  sv.Set("open_cursors", Json::Number(static_cast<double>(ss.open_cursors)));
  sv.Set("cursors_opened",
         Json::Number(static_cast<double>(ss.cursors_opened)));
  sv.Set("cursors_invalidated",
         Json::Number(static_cast<double>(ss.cursors_invalidated)));
  sv.Set("cursors_evicted",
         Json::Number(static_cast<double>(ss.cursors_evicted)));
  out.Set("server", std::move(sv));

  Json tenants = Json::Object();
  for (const auto& [name, ts] : admission_.stats()) {
    Json t = Json::Object();
    t.Set("admitted", Json::Number(static_cast<double>(ts.admitted)));
    t.Set("rate_limited",
          Json::Number(static_cast<double>(ts.rate_limited)));
    t.Set("busy_rejected",
          Json::Number(static_cast<double>(ts.busy_rejected)));
    t.Set("in_flight", Json::Number(static_cast<double>(ts.in_flight)));
    tenants.Set(name, std::move(t));
  }
  out.Set("tenants", std::move(tenants));
  return out;
}

std::string CqaServer::RegisterCursor(
    std::shared_ptr<const AnswerCursor> cursor, DbEntry* db_entry,
    const std::string& tenant, size_t offset) {
  std::lock_guard<std::mutex> lock(cursor_mu_);
  const uint64_t id = next_cursor_id_++;
  cursor_lru_.push_front(id);
  CursorEntry entry;
  entry.cursor = std::move(cursor);
  entry.db_entry = db_entry;
  entry.tenant = tenant;
  entry.lru_pos = cursor_lru_.begin();
  cursors_.emplace(id, std::move(entry));
  cursors_opened_.fetch_add(1, std::memory_order_relaxed);
  while (cursors_.size() > options_.max_cursors) {
    const uint64_t victim = cursor_lru_.back();
    cursor_lru_.pop_back();
    cursors_.erase(victim);
    cursors_evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  return EncodeToken(id, offset);
}

std::string CqaServer::EncodeToken(uint64_t id, size_t offset) const {
  const uint64_t check = HashFinalize(
      HashCombine(HashCombine(token_secret_, id), offset));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "cqa1-%016llx-%016llx-%016llx",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(offset),
                static_cast<unsigned long long>(check));
  return buf;
}

bool CqaServer::DecodeToken(const std::string& token, uint64_t* id,
                            size_t* offset) const {
  // Format: "cqa1-" + three 16-hex-digit fields separated by '-'.
  if (token.size() != 5 + 16 * 3 + 2 || token.rfind("cqa1-", 0) != 0 ||
      token[21] != '-' || token[38] != '-') {
    return false;
  }
  uint64_t fields[3] = {0, 0, 0};
  const size_t starts[3] = {5, 22, 39};
  for (int f = 0; f < 3; ++f) {
    for (int i = 0; i < 16; ++i) {
      const char c = token[starts[f] + static_cast<size_t>(i)];
      fields[f] <<= 4;
      if (c >= '0' && c <= '9') {
        fields[f] |= static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        fields[f] |= static_cast<uint64_t>(c - 'a' + 10);
      } else {
        return false;
      }
    }
  }
  const uint64_t check = HashFinalize(
      HashCombine(HashCombine(token_secret_, fields[0]), fields[1]));
  if (check != fields[2]) return false;  // foreign or tampered token
  *id = fields[0];
  *offset = static_cast<size_t>(fields[1]);
  return true;
}

ServerStats CqaServer::stats() const {
  ServerStats out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.eval_requests = eval_requests_.load(std::memory_order_relaxed);
  out.fetch_requests = fetch_requests_.load(std::memory_order_relaxed);
  out.publish_requests = publish_requests_.load(std::memory_order_relaxed);
  out.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.cursors_opened = cursors_opened_.load(std::memory_order_relaxed);
  out.cursors_invalidated =
      cursors_invalidated_.load(std::memory_order_relaxed);
  out.cursors_evicted = cursors_evicted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(cursor_mu_);
    out.open_cursors = static_cast<long long>(cursors_.size());
  }
  return out;
}

void CqaServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;
  stopping_.store(true, std::memory_order_relaxed);

  // Stop accepting: unblock the accept() call, then join the acceptor.
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();

  // Unblock idle connections (their next read returns EOF); a connection
  // mid-request finishes it and writes the response first — SHUT_RD leaves
  // the write side open.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : conns_) {
      if (conn.fd.valid()) ::shutdown(conn.fd.get(), SHUT_RD);
    }
  }
  for (;;) {
    Conn victim;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (conns_.empty()) break;
      auto it = conns_.begin();
      victim = std::move(it->second);
      conns_.erase(it);
    }
    if (victim.thread.joinable()) victim.thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    finished_conns_.clear();
  }

  // Finally drain the QueryService itself (every bridged Submit has
  // already resolved — its connection thread is joined).
  service_->Drain();
  service_->Shutdown();
}

}  // namespace cqa
