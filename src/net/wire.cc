#include "net/wire.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cqa {
namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
}

bool WriteAll(int fd, const char* data, size_t len, std::string* error) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, "send failed");
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// Resolves `host` to an IPv4 address. Accepts dotted quads and
/// "localhost"; anything else goes through getaddrinfo.
bool ResolveIpv4(const std::string& host, in_addr* out, std::string* error) {
  const std::string name = host.empty() || host == "localhost"
                               ? std::string("127.0.0.1")
                               : host;
  if (::inet_pton(AF_INET, name.c_str(), out) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(name.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    if (error != nullptr) {
      *error = "cannot resolve host " + host + ": " + ::gai_strerror(rc);
    }
    return false;
  }
  *out = reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return true;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool WriteFrame(int fd, std::string_view payload, std::string* error) {
  std::string frame;
  frame.reserve(payload.size() + 16);
  frame += std::to_string(payload.size());
  frame += '\n';
  frame.append(payload.data(), payload.size());
  frame += '\n';
  return WriteAll(fd, frame.data(), frame.size(), error);
}

bool FrameReader::Fill(std::string* error) {
  // Compact the consumed prefix before growing — a long-lived connection
  // must not accumulate every frame it ever read.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, "recv failed");
      return false;
    }
    if (n == 0) return false;  // EOF; caller decides if it is clean
    buf_.append(chunk, static_cast<size_t>(n));
    return true;
  }
}

FrameReader::Result FrameReader::Next(std::string* payload,
                                      std::string* error) {
  // Read the length line.
  size_t nl;
  while ((nl = buf_.find('\n', pos_)) == std::string::npos) {
    const bool at_boundary = pos_ == buf_.size();
    std::string io_error;
    if (!Fill(&io_error)) {
      if (io_error.empty() && at_boundary) return Result::kEof;
      if (error != nullptr) {
        *error = io_error.empty() ? "EOF inside a frame" : io_error;
      }
      return Result::kError;
    }
    if (buf_.size() - pos_ > 32 &&
        buf_.find('\n', pos_) == std::string::npos) {
      if (error != nullptr) *error = "frame length line too long";
      return Result::kError;
    }
  }
  const std::string_view line(buf_.data() + pos_, nl - pos_);
  size_t len = 0;
  if (line.empty() || line.size() > 19) {
    if (error != nullptr) *error = "malformed frame length";
    return Result::kError;
  }
  for (const char c : line) {
    if (c < '0' || c > '9') {
      if (error != nullptr) *error = "malformed frame length";
      return Result::kError;
    }
    len = len * 10 + static_cast<size_t>(c - '0');
  }
  if (len > max_bytes_) {
    if (error != nullptr) {
      *error = "frame of " + std::to_string(len) + " bytes exceeds limit";
    }
    return Result::kError;
  }
  pos_ = nl + 1;

  // Read the payload plus its trailing newline.
  while (buf_.size() - pos_ < len + 1) {
    std::string io_error;
    if (!Fill(&io_error)) {
      if (error != nullptr) {
        *error = io_error.empty() ? "EOF inside a frame" : io_error;
      }
      return Result::kError;
    }
  }
  payload->assign(buf_, pos_, len);
  if (buf_[pos_ + len] != '\n') {
    if (error != nullptr) *error = "missing frame terminator";
    return Result::kError;
  }
  pos_ += len + 1;
  return Result::kFrame;
}

UniqueFd DialTcp(const std::string& host, int port, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (!ResolveIpv4(host, &addr.sin_addr, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    SetError(error, "socket failed");
    return UniqueFd();
  }
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    SetError(error, "connect to " + host + ":" + std::to_string(port) +
                        " failed");
    return UniqueFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

UniqueFd ListenTcp(const std::string& host, int port, int backlog,
                   int* bound_port, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (!ResolveIpv4(host, &addr.sin_addr, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    SetError(error, "socket failed");
    return UniqueFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    SetError(error, "bind to port " + std::to_string(port) + " failed");
    return UniqueFd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    SetError(error, "listen failed");
    return UniqueFd();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      SetError(error, "getsockname failed");
      return UniqueFd();
    }
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

}  // namespace cqa
