// cqa_server: the network front end over QueryService. A CqaServer owns a
// QueryService, hosts a set of named databases, and serves the
// length-prefixed JSON wire protocol (net/wire.h) on a TCP port with a
// thread per connection. Five verbs:
//
//   EVAL    {"verb":"EVAL","db":<name>,"query":<rule text>,"mode":
//            "exact"|"over"|"under"|"bounds","limit":N,"deadline_ms":D,
//            "max_nodes":N,"max_answers":N,"api_key":K}
//           Parses the query over the database's vocabulary (cq/parse.h),
//           bridges it onto QueryService::Submit — so deadlines arm at
//           submission, queue wait counts, and the PR-6 shedding
//           (degrade-to-kBounds, queue-full rejection) applies — and
//           replies with the first `limit`-sized page of answers plus a
//           resumable cursor token when more remain. kBounds responses
//           carry both sides (certain page + possible page, each with its
//           own cursor).
//   FETCH   {"verb":"FETCH","cursor":<token>,"limit":N}
//           The next page of an open cursor. Tokens are opaque, offset-
//           carrying and idempotent: re-sending a token re-reads the same
//           page, so a client that lost a response can resume.
//   CLOSE   {"verb":"CLOSE","cursor":<token>}   Drops a cursor early.
//   PUBLISH {"verb":"PUBLISH","db":<name>,"fact":"E(a, b)"}
//           Inserts one fact through QueryService::Publish (serialized
//           against subscriptions), under the database's exclusive lock.
//   STATS   {"verb":"STATS"}
//           Streaming/shedding counters (BatchStats), EvalCache counters,
//           per-tenant admission counters, and the server's own counters.
//
// Responses are {"ok":true,...} or {"ok":false,"error":{"code":...,
// "message":...}}; the error codes are the typed surface of every refusal
// layer (see ErrorCode below).
//
// Answer paging and the snapshot rule
// -----------------------------------
// Every response's answers come from an AnswerCursor snapshot
// (eval/answer_set.h) taken by QueryService::MakeCursors when the Submit
// future resolves: rows are in a deterministic sorted order, and paging
// with limit=1 concatenates to exactly the answers an in-process
// Evaluate would return. Cursors share the subscription snapshot rule
// (eval/service.h): a cursor is pinned to the database version it
// evaluated at, and this server *bounds staleness* — a FETCH on a cursor
// whose database has since been mutated (PUBLISH) is refused with
// "cursor_invalidated" rather than serving pre-mutation rows; a torn page
// mixing versions can never be produced. Exhausted and CLOSEd cursors are
// dropped; at most ServerOptions::max_cursors are retained (LRU, evicted
// cursors answer "unknown_cursor").
//
// Admission ordering: api_key -> tenant (token bucket + concurrent cap,
// net/admission.h) runs before the request touches the QueryService, whose
// own max_queue/degrade_queue shedding still applies behind it. STATS only
// authenticates (monitoring must work while a tenant is throttled).
//
// Coherence: EVAL/FETCH hold the database's shared lock, PUBLISH its
// exclusive lock, so a fact never lands mid-evaluation (the EvalRequest
// no-mutation contract) and a version read never tears.
//
// Lifecycle: AddDatabase -> Start -> (serve) -> Shutdown. Shutdown is the
// graceful drain (SIGTERM handling in the cqa_server binary calls it):
// stop accepting, unblock idle connections (in-flight requests finish and
// their responses are written), join every connection thread, then
// Drain() + Shutdown() the QueryService. Idempotent; the destructor calls
// it too.

#ifndef CQA_NET_SERVER_H_
#define CQA_NET_SERVER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/database.h"
#include "eval/service.h"
#include "net/admission.h"
#include "net/json.h"
#include "net/wire.h"

namespace cqa {

struct ServerOptions {
  /// Interface to bind ("127.0.0.1" = loopback only).
  std::string host = "127.0.0.1";
  /// TCP port; 0 = ephemeral (read the bound port from port()).
  int port = 0;
  /// Forwarded to the owned QueryService (threads, cache, limits,
  /// max_queue/degrade_queue shedding, sharding — the whole serving stack).
  EvalOptions eval;
  /// Tenant registry (net/admission.h). Default: anonymous, unlimited.
  AdmissionOptions admission;
  /// Page size when a request omits "limit" (or sends 0).
  size_t default_limit = 256;
  /// Requested page sizes are clamped to this.
  size_t max_limit = 4096;
  /// Open cursors retained (LRU beyond this; evicted ones answer
  /// "unknown_cursor", which a client treats like an expired pagination
  /// token: re-issue the query).
  size_t max_cursors = 1024;
  /// Frames larger than this are a protocol error (connection closed).
  size_t max_frame_bytes = 16 * 1024 * 1024;
};

/// The typed wire error codes ("error":{"code":...}).
struct ErrorCode {
  static constexpr const char* kBadRequest = "bad_request";
  static constexpr const char* kParseError = "parse_error";
  static constexpr const char* kUnknownDatabase = "unknown_database";
  static constexpr const char* kUnauthenticated = "unauthenticated";
  static constexpr const char* kRateLimited = "rate_limited";
  static constexpr const char* kTenantBusy = "tenant_busy";
  static constexpr const char* kQueueFull = "queue_full";
  static constexpr const char* kShuttingDown = "shutting_down";
  static constexpr const char* kBadCursorToken = "bad_cursor_token";
  static constexpr const char* kUnknownCursor = "unknown_cursor";
  static constexpr const char* kCursorInvalidated = "cursor_invalidated";
};

/// Cumulative server counters (snapshot via CqaServer::stats).
struct ServerStats {
  long long connections_accepted = 0;
  long long requests = 0;  ///< frames dispatched (all verbs)
  long long eval_requests = 0;
  long long fetch_requests = 0;
  long long publish_requests = 0;
  long long stats_requests = 0;
  long long errors = 0;  ///< error responses sent
  long long cursors_opened = 0;
  long long cursors_invalidated = 0;  ///< refused after a mutation
  long long cursors_evicted = 0;      ///< dropped by the max_cursors LRU
  long long open_cursors = 0;         ///< currently registered
};

class CqaServer {
 public:
  explicit CqaServer(ServerOptions options);
  ~CqaServer();  ///< calls Shutdown()

  CqaServer(const CqaServer&) = delete;
  CqaServer& operator=(const CqaServer&) = delete;

  /// Registers `db` under `name` for EVAL/PUBLISH requests. The database is
  /// borrowed and must outlive the server; after Start it is accessed only
  /// under the server's per-database lock, so the caller must not touch it
  /// concurrently. Call before Start.
  void AddDatabase(std::string name, Database* db);

  /// Binds, listens, and starts the accept thread. False (with `error`) if
  /// the port cannot be bound.
  bool Start(std::string* error);

  /// The bound port (after Start) — the ephemeral port when options.port=0.
  int port() const { return port_; }

  /// Graceful drain; see the file comment. Idempotent, thread- and
  /// signal-context-unsafe (call from a normal thread, as the binary's
  /// signal loop does).
  void Shutdown();

  ServerStats stats() const;
  QueryService& service() { return *service_; }
  TenantAdmission& admission() { return admission_; }

 private:
  struct DbEntry {
    Database* db = nullptr;
    /// EVAL/FETCH shared, PUBLISH exclusive (see the coherence note).
    std::shared_mutex rw;
    /// name -> element for PUBLISH fact parsing; grown under the
    /// exclusive lock when a fact mentions a fresh element.
    std::unordered_map<std::string, Element> elements;
  };

  struct CursorEntry {
    std::shared_ptr<const AnswerCursor> cursor;
    DbEntry* db_entry = nullptr;
    std::string tenant;
    std::list<uint64_t>::iterator lru_pos;
  };

  struct Conn {
    UniqueFd fd;
    std::thread thread;
  };

  void AcceptLoop();
  void HandleConnection(uint64_t conn_id);
  /// Joins and erases connections that announced completion.
  void ReapFinished();

  Json Dispatch(const Json& request);
  Json HandleEval(const Json& request, const std::string& tenant);
  Json HandleFetch(const Json& request);
  Json HandleClose(const Json& request);
  Json HandlePublish(const Json& request);
  Json HandleStats(const Json& request);

  /// The registered entry for `name`, or nullptr (entries are stable).
  DbEntry* FindDb(const std::string& name);
  /// Applies default_limit / max_limit; false (with an error response in
  /// `error_out`) on a negative or fractional "limit" field.
  bool ParseLimit(const Json& request, size_t* limit, Json* error_out) const;

  /// Registers a cursor (evicting LRU entries past max_cursors) and
  /// returns the token for `offset`.
  std::string RegisterCursor(std::shared_ptr<const AnswerCursor> cursor,
                             DbEntry* db_entry, const std::string& tenant,
                             size_t offset);
  std::string EncodeToken(uint64_t id, size_t offset) const;
  /// False on a malformed or foreign (checksum-failing) token.
  bool DecodeToken(const std::string& token, uint64_t* id,
                   size_t* offset) const;

  ServerOptions options_;
  std::unique_ptr<QueryService> service_;
  TenantAdmission admission_;

  UniqueFd listen_fd_;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;  ///< serializes Shutdown (dtor + signal loop)
  bool shut_down_ = false;  ///< guarded by shutdown_mu_

  std::mutex conn_mu_;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, Conn> conns_;
  std::vector<uint64_t> finished_conns_;

  std::mutex db_mu_;  ///< guards the map shape only (entries are stable)
  std::unordered_map<std::string, std::unique_ptr<DbEntry>> dbs_;

  mutable std::mutex cursor_mu_;
  uint64_t next_cursor_id_ = 1;
  uint64_t token_secret_ = 0;  ///< seeded per server; makes tokens opaque
  std::unordered_map<uint64_t, CursorEntry> cursors_;
  std::list<uint64_t> cursor_lru_;  ///< front = most recently used

  // Counters (atomic: bumped from every connection thread).
  mutable std::atomic<long long> connections_accepted_{0};
  mutable std::atomic<long long> requests_{0};
  mutable std::atomic<long long> eval_requests_{0};
  mutable std::atomic<long long> fetch_requests_{0};
  mutable std::atomic<long long> publish_requests_{0};
  mutable std::atomic<long long> stats_requests_{0};
  mutable std::atomic<long long> errors_{0};
  mutable std::atomic<long long> cursors_opened_{0};
  mutable std::atomic<long long> cursors_invalidated_{0};
  mutable std::atomic<long long> cursors_evicted_{0};
};

}  // namespace cqa

#endif  // CQA_NET_SERVER_H_
