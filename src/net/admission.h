// Per-tenant admission control for the network front end: an API key on the
// request envelope maps to a tenant, and each tenant gets a token-bucket
// rate limit plus a concurrent-request cap. This layer sits *in front of*
// the QueryService's own queue shedding (EvalOptions::max_queue /
// degrade_queue): admission protects tenants from each other (one noisy
// tenant is throttled before it can fill the shared queue), while the queue
// thresholds protect the process as a whole — a request must pass both, and
// each refusal surfaces as its own typed wire error (rate_limited /
// tenant_busy vs queue_full).
//
// Thread-safe: Admit/Release are called concurrently from every connection
// thread.

#ifndef CQA_NET_ADMISSION_H_
#define CQA_NET_ADMISSION_H_

#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cqa {

/// One tenant's identity and budgets.
struct TenantConfig {
  /// The API key presented on the wire ("api_key" envelope field). Empty
  /// identifies the anonymous tenant (see AdmissionOptions).
  std::string api_key;
  /// Display name, used in stats and error messages.
  std::string name;
  /// Sustained request rate (requests/second) of the token bucket; 0 (or
  /// negative) = unlimited.
  double rate_per_sec = 0.0;
  /// Bucket capacity (maximum burst). Defaults to max(1, rate_per_sec)
  /// when 0 and a rate is set.
  double burst = 0.0;
  /// Concurrently executing requests allowed; 0 = unlimited.
  int max_concurrent = 0;
};

struct AdmissionOptions {
  /// Registered tenants, looked up by api_key. Duplicate keys: first wins.
  std::vector<TenantConfig> tenants;
  /// When true, requests without an api_key run as the tenant "anonymous"
  /// with `anonymous_limits` (its api_key/name fields are ignored). When
  /// false, keyless requests are refused as unauthenticated.
  bool allow_anonymous = true;
  /// Budgets of the anonymous tenant (default: unlimited).
  TenantConfig anonymous_limits;
};

/// Why a request was (or was not) admitted.
enum class AdmitCode {
  kOk,
  kUnknownKey,    ///< api_key matches no tenant (wire: "unauthenticated")
  kRateLimited,   ///< token bucket empty (wire: "rate_limited")
  kTenantBusy,    ///< concurrent-request cap reached (wire: "tenant_busy")
};

/// Per-tenant cumulative counters (snapshot via TenantAdmission::stats).
struct TenantStats {
  long long admitted = 0;
  long long rate_limited = 0;
  long long busy_rejected = 0;
  long long in_flight = 0;  ///< currently admitted, not yet released
};

class TenantAdmission {
 public:
  explicit TenantAdmission(AdmissionOptions options);

  struct Result {
    AdmitCode code = AdmitCode::kOk;
    /// The admitted (or refusing) tenant's name; empty for kUnknownKey.
    std::string tenant;
    /// For kRateLimited: when the bucket will next hold a full token.
    double retry_after_ms = 0.0;
  };

  /// Takes one token and one concurrency slot for the tenant of `api_key`.
  /// On kOk the caller MUST balance with Release(result.tenant) when the
  /// request finishes (the server uses an RAII guard). Refusals consume
  /// nothing.
  Result Admit(std::string_view api_key);

  /// Returns the concurrency slot taken by an earlier successful Admit.
  void Release(const std::string& tenant);

  /// Identifies the tenant of `api_key` without consuming a token or a
  /// concurrency slot (STATS uses this: monitoring must work while the
  /// tenant is throttled). Returns its name, or nullopt for unknown keys.
  std::optional<std::string> Authenticate(std::string_view api_key) const;

  /// Snapshot of the per-tenant counters, keyed by tenant name.
  std::map<std::string, TenantStats> stats() const;

 private:
  struct Tenant {
    TenantConfig config;
    double tokens = 0.0;  ///< current bucket fill
    std::chrono::steady_clock::time_point last_refill;
    TenantStats stats;
  };

  Tenant* FindByKey(std::string_view api_key);

  AdmissionOptions options_;
  mutable std::mutex mu_;
  /// Indexed by registration order; name -> index for Release.
  std::vector<Tenant> tenants_;
  std::map<std::string, size_t, std::less<>> by_name_;
  std::map<std::string, size_t, std::less<>> by_key_;
};

}  // namespace cqa

#endif  // CQA_NET_ADMISSION_H_
