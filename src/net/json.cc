#include "net/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/check.h"

namespace cqa {
namespace {

constexpr int kMaxDepth = 64;

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);  // UTF-8 bytes pass through untouched
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double n, std::string* out) {
  // Counters and ids dominate the protocol: print 53-bit-safe integers
  // without a decimal point so they round-trip as written.
  if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  *out += buf;
}

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> Run() {
    SkipWs();
    Json value;
    if (!ParseValue(&value, 0)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return value;
  }

 private:
  bool Fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = msg + " (at byte " + std::to_string(pos_) + ")";
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        *out = Json::Null();
        return Literal("null");
      case 't':
        *out = Json::Bool(true);
        return Literal("true");
      case 'f':
        *out = Json::Bool(false);
        return Literal("false");
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Json::Str(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double n = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    *out = Json::Number(n);
    return true;
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    for (;;) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp < 0xDC00 &&
              text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low)) return false;
            if (low >= 0xDC00 && low < 0xE000) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Fail("invalid surrogate pair");
            }
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
  }

  bool ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Json element;
      SkipWs();
      if (!ParseValue(&element, depth + 1)) return false;
      out->Append(std::move(element));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      Json value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::Bool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double n) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = n;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::AsBool() const {
  CQA_CHECK(is_bool());
  return bool_;
}

double Json::AsNumber() const {
  CQA_CHECK(is_number());
  return number_;
}

const std::string& Json::AsString() const {
  CQA_CHECK(is_string());
  return string_;
}

const std::vector<Json>& Json::items() const {
  CQA_CHECK(is_array());
  return items_;
}

Json& Json::Append(Json value) {
  CQA_CHECK(is_array());
  items_.push_back(std::move(value));
  return *this;
}

Json& Json::Set(std::string key, Json value) {
  CQA_CHECK(is_object());
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::Find(std::string_view key) const {
  CQA_CHECK(is_object());
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::fields() const {
  CQA_CHECK(is_object());
  return fields_;
}

std::string Json::GetString(std::string_view key, std::string def) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : std::move(def);
}

double Json::GetNumber(std::string_view key, double def) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : def;
}

bool Json::GetBool(std::string_view key, bool def) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : def;
}

std::string Json::Dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendNumber(number_, &out);
      break;
    case Kind::kString:
      AppendEscaped(string_, &out);
      break;
    case Kind::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += items_[i].Dump();
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendEscaped(fields_[i].first, &out);
        out.push_back(':');
        out += fields_[i].second.Dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

std::optional<Json> Json::Parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).Run();
}

}  // namespace cqa
