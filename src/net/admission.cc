#include "net/admission.h"

#include <algorithm>

#include "base/check.h"

namespace cqa {

TenantAdmission::TenantAdmission(AdmissionOptions options)
    : options_(std::move(options)) {
  const auto now = std::chrono::steady_clock::now();
  auto add = [&](TenantConfig config) {
    if (by_key_.count(config.api_key) > 0) return;  // first registration wins
    if (config.burst <= 0.0 && config.rate_per_sec > 0.0) {
      config.burst = std::max(1.0, config.rate_per_sec);
    }
    Tenant t;
    t.config = std::move(config);
    t.tokens = t.config.burst;  // start full: a fresh tenant may burst
    t.last_refill = now;
    const size_t index = tenants_.size();
    by_name_.emplace(t.config.name, index);
    by_key_.emplace(t.config.api_key, index);
    tenants_.push_back(std::move(t));
  };
  if (options_.allow_anonymous) {
    TenantConfig anon = options_.anonymous_limits;
    anon.api_key.clear();
    anon.name = "anonymous";
    add(std::move(anon));
  }
  for (const TenantConfig& config : options_.tenants) {
    CQA_CHECK(!config.name.empty());
    CQA_CHECK(!config.api_key.empty());
    add(config);
  }
}

TenantAdmission::Tenant* TenantAdmission::FindByKey(std::string_view api_key) {
  const auto it = by_key_.find(api_key);
  return it == by_key_.end() ? nullptr : &tenants_[it->second];
}

TenantAdmission::Result TenantAdmission::Admit(std::string_view api_key) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = FindByKey(api_key);
  if (t == nullptr) {
    return {AdmitCode::kUnknownKey, "", 0.0};
  }
  // Refill the bucket up to its capacity from the elapsed wall time.
  const auto now = std::chrono::steady_clock::now();
  if (t->config.rate_per_sec > 0.0) {
    const double elapsed_s =
        std::chrono::duration<double>(now - t->last_refill).count();
    t->tokens = std::min(t->config.burst,
                         t->tokens + elapsed_s * t->config.rate_per_sec);
    t->last_refill = now;
    if (t->tokens < 1.0) {
      ++t->stats.rate_limited;
      const double retry_ms =
          (1.0 - t->tokens) / t->config.rate_per_sec * 1000.0;
      return {AdmitCode::kRateLimited, t->config.name, retry_ms};
    }
  }
  if (t->config.max_concurrent > 0 &&
      t->stats.in_flight >= t->config.max_concurrent) {
    ++t->stats.busy_rejected;
    return {AdmitCode::kTenantBusy, t->config.name, 0.0};
  }
  if (t->config.rate_per_sec > 0.0) t->tokens -= 1.0;
  ++t->stats.admitted;
  ++t->stats.in_flight;
  return {AdmitCode::kOk, t->config.name, 0.0};
}

void TenantAdmission::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(tenant);
  CQA_CHECK(it != by_name_.end());
  Tenant& t = tenants_[it->second];
  CQA_CHECK(t.stats.in_flight > 0);
  --t.stats.in_flight;
}

std::optional<std::string> TenantAdmission::Authenticate(
    std::string_view api_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_key_.find(api_key);
  if (it == by_key_.end()) return std::nullopt;
  return tenants_[it->second].config.name;
}

std::map<std::string, TenantStats> TenantAdmission::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TenantStats> out;
  for (const Tenant& t : tenants_) {
    out.emplace(t.config.name, t.stats);
  }
  return out;
}

}  // namespace cqa
