// A minimal JSON value type with a strict parser and a deterministic
// writer — the payload format of the wire protocol (net/wire.h). Kept
// dependency-free on purpose: the container bakes no JSON library, and the
// protocol needs only objects/arrays/strings/numbers/bools/null.
//
// Objects preserve insertion order (Dump output is deterministic, so golden
// tests and byte-identity checks are stable) and Find is a linear scan —
// protocol envelopes are a dozen keys, never a dictionary workload.

#ifndef CQA_NET_JSON_H_
#define CQA_NET_JSON_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cqa {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default: null.
  Json() = default;

  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double n);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Scalar reads; each CHECKs the kind.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;

  /// Array access. Append CHECKs this is an array.
  const std::vector<Json>& items() const;
  Json& Append(Json value);

  /// Object access. Set replaces an existing key; Find returns nullptr when
  /// absent. Both CHECK this is an object.
  Json& Set(std::string key, Json value);
  const Json* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& fields() const;

  /// Typed object getters with defaults: absent key or wrong kind returns
  /// `def` — protocol fields are all optional-with-default.
  std::string GetString(std::string_view key, std::string def = "") const;
  double GetNumber(std::string_view key, double def = 0.0) const;
  bool GetBool(std::string_view key, bool def = false) const;

  /// Compact single-line serialization (no insignificant whitespace).
  /// Integral numbers in the 53-bit-safe range print without a decimal
  /// point, so counters round-trip as written.
  std::string Dump() const;

  /// Strict parse of exactly one JSON document (trailing garbage is an
  /// error). Returns nullopt and fills `error` (if non-null) on malformed
  /// input; nesting beyond 64 levels is rejected.
  static std::optional<Json> Parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

}  // namespace cqa

#endif  // CQA_NET_JSON_H_
