#include "net/client.h"

#include <utility>

namespace cqa {

bool CqaClient::Connect(const std::string& host, int port) {
  reader_.reset();
  std::string error;
  fd_ = DialTcp(host, port, &error);
  if (!fd_.valid()) {
    last_error_ = {"transport", error};
    return false;
  }
  reader_ = std::make_unique<FrameReader>(fd_.get(),
                                          /*max_bytes=*/64 * 1024 * 1024);
  return true;
}

std::optional<Json> CqaClient::Call(Json request) {
  if (!fd_.valid()) {
    last_error_ = {"transport", "not connected"};
    return std::nullopt;
  }
  if (!api_key_.empty()) request.Set("api_key", Json::Str(api_key_));
  std::string error;
  if (!WriteFrame(fd_.get(), request.Dump(), &error)) {
    last_error_ = {"transport", error};
    return std::nullopt;
  }
  std::string payload;
  const FrameReader::Result r = reader_->Next(&payload, &error);
  if (r != FrameReader::Result::kFrame) {
    last_error_ = {"transport", r == FrameReader::Result::kEof
                                    ? "connection closed by server"
                                    : error};
    return std::nullopt;
  }
  std::optional<Json> response = Json::Parse(payload, &error);
  if (!response.has_value() || !response->is_object()) {
    last_error_ = {"transport", "bad response frame: " + error};
    return std::nullopt;
  }
  return response;
}

std::optional<Json> CqaClient::CallChecked(Json request) {
  std::optional<Json> response = Call(std::move(request));
  if (!response.has_value()) return std::nullopt;
  if (!response->GetBool("ok")) {
    const Json* err = response->Find("error");
    last_error_ = {err != nullptr ? err->GetString("code", "unknown")
                                  : "unknown",
                   err != nullptr ? err->GetString("message") : ""};
    return std::nullopt;
  }
  return response;
}

void CqaClient::ParseRows(const Json& rows,
                          std::vector<std::vector<std::string>>* out) {
  if (!rows.is_array()) return;
  for (const Json& row : rows.items()) {
    std::vector<std::string> tuple;
    if (row.is_array()) {
      for (const Json& cell : row.items()) {
        tuple.push_back(cell.is_string() ? cell.AsString() : cell.Dump());
      }
    }
    out->push_back(std::move(tuple));
  }
}

CqaClient::Page CqaClient::ParsePage(const Json& response,
                                     const char* rows_key,
                                     const char* cursor_key,
                                     const char* more_key) {
  Page page;
  if (const Json* rows = response.Find(rows_key)) ParseRows(*rows, &page.rows);
  page.cursor = response.GetString(cursor_key);
  page.more = response.GetBool(more_key);
  return page;
}

std::optional<CqaClient::EvalResult> CqaClient::Eval(const EvalParams& p) {
  Json req = Json::Object();
  req.Set("verb", Json::Str("EVAL"));
  req.Set("db", Json::Str(p.db));
  req.Set("query", Json::Str(p.query));
  req.Set("mode", Json::Str(p.mode));
  if (p.limit > 0) req.Set("limit", Json::Number(static_cast<double>(p.limit)));
  if (p.deadline_ms > 0.0) req.Set("deadline_ms", Json::Number(p.deadline_ms));
  if (p.max_nodes > 0) {
    req.Set("max_nodes", Json::Number(static_cast<double>(p.max_nodes)));
  }
  if (p.max_answers > 0) {
    req.Set("max_answers", Json::Number(static_cast<double>(p.max_answers)));
  }
  std::optional<Json> response = CallChecked(std::move(req));
  if (!response.has_value()) return std::nullopt;
  EvalResult out;
  out.answers = ParsePage(*response, "answers", "cursor", "more");
  out.over = ParsePage(*response, "over", "over_cursor", "over_more");
  out.mode = response->GetString("mode");
  out.status = response->GetString("status");
  out.exact = response->GetBool("exact");
  out.degraded = response->GetBool("degraded");
  out.over_valid = response->GetBool("over_valid", true);
  out.answer_count =
      static_cast<long long>(response->GetNumber("answer_count"));
  out.possible_count =
      static_cast<long long>(response->GetNumber("possible_count"));
  out.raw = std::move(*response);
  return out;
}

std::optional<CqaClient::Page> CqaClient::Fetch(const std::string& cursor,
                                                size_t limit) {
  Json req = Json::Object();
  req.Set("verb", Json::Str("FETCH"));
  req.Set("cursor", Json::Str(cursor));
  if (limit > 0) req.Set("limit", Json::Number(static_cast<double>(limit)));
  std::optional<Json> response = CallChecked(std::move(req));
  if (!response.has_value()) return std::nullopt;
  return ParsePage(*response, "answers", "cursor", "more");
}

bool CqaClient::CloseCursor(const std::string& cursor) {
  Json req = Json::Object();
  req.Set("verb", Json::Str("CLOSE"));
  req.Set("cursor", Json::Str(cursor));
  return CallChecked(std::move(req)).has_value();
}

std::optional<bool> CqaClient::Publish(const std::string& db,
                                       const std::string& fact) {
  Json req = Json::Object();
  req.Set("verb", Json::Str("PUBLISH"));
  req.Set("db", Json::Str(db));
  req.Set("fact", Json::Str(fact));
  std::optional<Json> response = CallChecked(std::move(req));
  if (!response.has_value()) return std::nullopt;
  return response->GetBool("inserted");
}

std::optional<Json> CqaClient::Stats() {
  Json req = Json::Object();
  req.Set("verb", Json::Str("STATS"));
  return CallChecked(std::move(req));
}

bool CqaClient::DrainCursor(const Page& first, size_t limit,
                            std::vector<std::vector<std::string>>* out) {
  out->insert(out->end(), first.rows.begin(), first.rows.end());
  std::string cursor = first.cursor;
  bool more = first.more;
  while (more) {
    const std::optional<Page> page = Fetch(cursor, limit);
    if (!page.has_value()) return false;
    out->insert(out->end(), page->rows.begin(), page->rows.end());
    cursor = page->cursor;
    more = page->more;
  }
  return true;
}

}  // namespace cqa
